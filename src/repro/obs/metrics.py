"""Process-local metrics: counters, gauges, fixed-bucket histograms.

The registry is the measurement substrate for the whole recovery
pipeline (paper §5 reports per-contract time, rule hit counts, and
path-exploration cost — this is where those numbers live in the
reproduction).  Design constraints:

* **No wall-clock reads in hot loops.**  The engine keeps plain integer
  tallies while stepping and publishes them into the registry once per
  run, at the phase boundary; timers (:class:`Histogram` observations)
  are likewise sampled only when a phase starts or ends.
* **Disabled must cost ~nothing.**  :data:`NULL_REGISTRY` is a shared
  no-op backend: every instrument it hands out swallows updates, and
  instrumented code can guard label-dict construction with a single
  ``registry is not NULL_REGISTRY`` identity check.
* **Mergeable across processes.**  A worker serializes its registry
  with :meth:`MetricsRegistry.to_dict` and the parent folds it in with
  :meth:`MetricsRegistry.merge` — the same additive-counter pattern as
  :meth:`repro.sigrec.rules.RuleTracker.merge`, so a parallel batch run
  aggregates to exactly the serial run's counters.

Metrics are addressed by a name plus optional labels, flattened into a
stable string key (``rules.fired{rule=R4}``); the JSON document written
by ``--metrics-out`` maps those keys to values and is what
``repro stats`` and the Prometheus exposition consume.
"""

from __future__ import annotations

import json
import os
import tempfile
from bisect import bisect_left
from typing import Dict, Iterable, Mapping, Optional, Tuple, Union

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

#: Version of the serialized metrics document layout.
METRICS_SCHEMA_VERSION = 1

#: Default histogram boundaries for durations in seconds: sub-ms up to
#: tens of seconds, matching per-phase and per-contract recovery times.
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


def metric_key(name: str, labels: Mapping[str, object]) -> str:
    """Flatten ``name`` + labels into the canonical string key.

    Labels are sorted so the key is stable regardless of call-site
    keyword order: ``metric_key("x", {"b": 1, "a": 2})`` == ``x{a=2,b=1}``.
    """
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def parse_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Invert :func:`metric_key`: ``x{a=2}`` -> ``("x", {"a": "2"})``."""
    if not key.endswith("}") or "{" not in key:
        return key, {}
    name, _, inner = key[:-1].partition("{")
    labels: Dict[str, str] = {}
    for part in inner.split(","):
        if not part:
            continue
        label, _, value = part.partition("=")
        labels[label] = value
    return name, labels


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins, also across merges)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Fixed-boundary histogram of observations (typically seconds).

    Boundaries are upper bounds of the non-cumulative buckets; one
    overflow bucket catches everything above the last boundary.  Fixed
    boundaries make cross-process merging exact: same-key histograms
    from different workers add bucket-by-bucket.
    """

    __slots__ = ("bounds", "bucket_counts", "sum", "count")

    def __init__(self, bounds: Iterable[float] = DEFAULT_TIME_BUCKETS) -> None:
        self.bounds = tuple(sorted(bounds))
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket boundary")
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class MetricsRegistry:
    """Creates-on-first-use registry of named, labelled instruments."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument accessors ------------------------------------------

    def counter(self, name: str, **labels: object) -> Counter:
        key = metric_key(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = metric_key(name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(
        self,
        name: str,
        buckets: Iterable[float] = DEFAULT_TIME_BUCKETS,
        **labels: object,
    ) -> Histogram:
        key = metric_key(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(buckets)
        return instrument

    # -- serialization / merging ---------------------------------------

    def to_dict(self) -> dict:
        """The JSON-serializable metrics document."""
        return {
            "schema": METRICS_SCHEMA_VERSION,
            "counters": {k: c.value for k, c in sorted(self._counters.items())},
            "gauges": {k: g.value for k, g in sorted(self._gauges.items())},
            "histograms": {
                k: {
                    "bounds": list(h.bounds),
                    "counts": list(h.bucket_counts),
                    "sum": h.sum,
                    "count": h.count,
                }
                for k, h in sorted(self._histograms.items())
            },
        }

    @classmethod
    def from_dict(cls, doc: Mapping) -> "MetricsRegistry":
        registry = cls()
        registry.merge(doc)
        return registry

    def merge(self, other: Union["MetricsRegistry", Mapping]) -> None:
        """Fold another registry (or its document) into this one.

        Counters and histogram buckets add; gauges take the incoming
        value.  Merging is how per-worker registries aggregate in the
        batch parent and how ``--metrics-out`` accumulates across runs.
        """
        doc = other.to_dict() if isinstance(other, MetricsRegistry) else other
        for key, value in doc.get("counters", {}).items():
            self._counters.setdefault(key, Counter()).value += int(value)
        for key, value in doc.get("gauges", {}).items():
            self._gauges.setdefault(key, Gauge()).value = float(value)
        for key, payload in doc.get("histograms", {}).items():
            bounds = tuple(payload["bounds"])
            histogram = self._histograms.get(key)
            if histogram is None:
                histogram = self._histograms[key] = Histogram(bounds)
            elif histogram.bounds != bounds:
                raise ValueError(
                    f"histogram {key!r}: cannot merge bucket bounds "
                    f"{bounds} into {histogram.bounds}"
                )
            for index, count in enumerate(payload["counts"]):
                histogram.bucket_counts[index] += int(count)
            histogram.sum += float(payload["sum"])
            histogram.count += int(payload["count"])

    def counter_values(self) -> Dict[str, int]:
        """Plain ``key -> value`` view of every counter (for tests)."""
        return {k: c.value for k, c in self._counters.items()}

    def histogram_sums(
        self, name: str, label: str
    ) -> Dict[str, Tuple[float, int]]:
        """``label value -> (sum, count)`` across every ``name`` series.

        The run ledger snapshots this for ``phase.seconds`` before and
        after each ``recover`` call; the deltas are the per-record phase
        attribution and reconcile exactly with the histogram totals.
        """
        out: Dict[str, Tuple[float, int]] = {}
        for key, histogram in self._histograms.items():
            base, labels = parse_key(key)
            if base == name and label in labels:
                out[labels[label]] = (histogram.sum, histogram.count)
        return out


# ----------------------------------------------------------------------
# The null backend
# ----------------------------------------------------------------------


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class NullRegistry(MetricsRegistry):
    """The disabled backend: hands out shared swallow-everything
    instruments and serializes to an empty document.

    Instrumented code may additionally guard on
    ``registry is not NULL_REGISTRY`` to skip even building the label
    keyword arguments — that identity check is the entire cost of
    disabled observability.
    """

    def counter(self, name: str, **labels: object) -> Counter:
        return _NULL_COUNTER

    def gauge(self, name: str, **labels: object) -> Gauge:
        return _NULL_GAUGE

    def histogram(
        self,
        name: str,
        buckets: Iterable[float] = DEFAULT_TIME_BUCKETS,
        **labels: object,
    ) -> Histogram:
        return _NULL_HISTOGRAM

    def merge(self, other: Union[MetricsRegistry, Mapping]) -> None:
        pass


#: The shared disabled backend; compare by identity.
NULL_REGISTRY = NullRegistry()


# ----------------------------------------------------------------------
# Document I/O
# ----------------------------------------------------------------------


def load_metrics(path: str) -> Optional[dict]:
    """Read a metrics document; ``None`` on absence or corruption."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(doc, dict) or "counters" not in doc:
        return None
    return doc


def dump_metrics(
    registry: MetricsRegistry, path: str, merge_existing: bool = True
) -> dict:
    """Write ``registry`` to ``path`` atomically; returns the document.

    With ``merge_existing`` (the default for ``--metrics-out``) an
    existing valid document at ``path`` is folded in first, so repeated
    runs accumulate like Prometheus counters — a cold run's cache
    misses and the warm rerun's hits end up in one document.  Delete
    the file to reset.

    The load+merge+replace sequence is guarded by an advisory ``fcntl``
    lock on a ``<path>.lock`` sidecar, so two processes finishing at
    the same moment serialize instead of one silently overwriting the
    other's merge.  The sidecar (not the data file) is locked because
    ``os.replace`` swaps the data file's inode out from under any lock
    held on it.  On platforms without ``fcntl`` the lock degrades to a
    no-op — the pre-lock (single-writer) behavior.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    lock_handle = None
    if fcntl is not None:
        lock_handle = open(path + ".lock", "a")
        fcntl.flock(lock_handle.fileno(), fcntl.LOCK_EX)
    try:
        combined = MetricsRegistry()
        if merge_existing:
            existing = load_metrics(path)
            if existing is not None:
                combined.merge(existing)
        combined.merge(registry)
        doc = combined.to_dict()
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(doc, handle, indent=2)
                handle.write("\n")
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
    finally:
        if lock_handle is not None:
            fcntl.flock(lock_handle.fileno(), fcntl.LOCK_UN)
            lock_handle.close()
    return doc
