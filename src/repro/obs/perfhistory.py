"""Per-PR performance trajectory over ``BENCH_throughput.json``.

Every perf-relevant PR appends a snapshot of the machine-readable
benchmark document to ``benchmarks/history/`` (monotonic sequence
numbers, no timestamps — diffs stay deterministic), and CI's perf-smoke
job fails when the freshly measured document regresses more than 20%
against the previous entry on any tracked tier:

* ``tase.steps_per_second`` — cold single-core symbolic throughput,
* ``sharded_memo.speedup`` — warm-memo speedup (a ratio),
* ``throughput.contracts_per_second`` — batch recovery throughput,
* ``analysis.throughput_ratio`` — full-pipeline vs core-pass recovery
  throughput (bounds what the storage/lint passes cost).

Absolute rates are machine-dependent, so each snapshot stores a
``calibration`` figure — the ops/s of a fixed pure-Python workload
measured on the recording machine — and the regression check compares
*calibrated* rates (value / calibration).  Ratio tiers (the memo
speedup) compare raw.  This keeps a snapshot recorded on a fast
development box comparable to a CI runner to first order.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Mapping, Optional, Tuple

__all__ = [
    "TIERS",
    "append_snapshot",
    "calibrate",
    "check_improvement",
    "check_regression",
    "history_entries",
    "main",
]

#: (section, key, calibrated?) per tracked tier.  ``calibrated`` tiers
#: are machine-rate metrics normalized by the snapshot's calibration;
#: the rest are dimensionless ratios compared raw.
TIERS: Tuple[Tuple[str, str, bool], ...] = (
    ("tase", "steps_per_second", True),
    ("sharded_memo", "speedup", False),
    ("throughput", "contracts_per_second", True),
    # Full-pipeline recovery throughput relative to the core passes: a
    # drop means the framework's added analysis passes got slower.
    ("analysis", "throughput_ratio", False),
    # ABI-completion overhead: full pipeline vs core passes on the ABI
    # corpus; a drop means mutability/returns recovery got slower.
    ("abi", "throughput_ratio", False),
    # Type-inference throughput (indexed event analysis): events
    # consumed per second by the inference pass alone.
    ("inference", "events_per_second", True),
    # Indexed-vs-reference inference speedup (a ratio): a drop means
    # the index/memoization layers stopped paying for themselves.
    ("inference", "speedup_vs_baseline", False),
)

_CALIBRATION_N = 200_000


def calibrate(rounds: int = 5) -> float:
    """Machine-speed figure: ops/s of a fixed integer workload.

    Best-of-``rounds`` — the statistic a throughput measurement on
    shared hardware needs.  The workload is arbitrary but frozen: only
    its ratio between two machines ever matters.
    """
    best = 0.0
    for _ in range(rounds):
        start = time.perf_counter()
        acc = 0
        for i in range(_CALIBRATION_N):
            acc += i * i & 0xFFFF
        elapsed = time.perf_counter() - start
        if elapsed > 0:
            best = max(best, _CALIBRATION_N / elapsed)
    return best


def _load(path: str) -> Dict:
    with open(path, encoding="utf-8") as handle:
        doc = json.load(handle)
    if not isinstance(doc, dict):
        raise ValueError(f"{path}: expected a JSON object")
    return doc


def history_entries(history_dir: str) -> List[Tuple[int, Dict]]:
    """All snapshots in ``history_dir``, sorted by sequence number."""
    entries: List[Tuple[int, Dict]] = []
    if not os.path.isdir(history_dir):
        return entries
    for name in os.listdir(history_dir):
        stem, ext = os.path.splitext(name)
        if ext != ".json" or not stem.isdigit():
            continue
        entries.append((int(stem), _load(os.path.join(history_dir, name))))
    entries.sort(key=lambda pair: pair[0])
    return entries


def append_snapshot(
    bench_path: str,
    history_dir: str,
    note: str = "",
    calibration: Optional[float] = None,
) -> str:
    """Write the next ``NNNN.json`` snapshot; returns its path."""
    bench = _load(bench_path)
    entries = history_entries(history_dir)
    sequence = entries[-1][0] + 1 if entries else 1
    snapshot = {
        "sequence": sequence,
        "calibration": round(
            calibrate() if calibration is None else calibration, 2
        ),
        "note": note,
        "bench": bench,
    }
    os.makedirs(history_dir, exist_ok=True)
    path = os.path.join(history_dir, f"{sequence:04d}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def _tier_value(bench: Mapping, section: str, key: str) -> Optional[float]:
    payload = bench.get(section)
    if not isinstance(payload, Mapping):
        return None
    value = payload.get(key)
    return float(value) if isinstance(value, (int, float)) else None


def check_regression(
    bench_path: str,
    history_dir: str,
    threshold: float = 0.2,
    calibration: Optional[float] = None,
) -> List[str]:
    """Compare ``bench_path`` against the newest history snapshot.

    Returns one message per tier regressing by more than ``threshold``
    (empty list: no regression).  Tiers missing on either side are
    skipped — a snapshot recorded before a tier existed must not fail
    every future run.
    """
    entries = history_entries(history_dir)
    if not entries:
        return []
    _, previous = entries[-1]
    prev_bench = previous.get("bench", {})
    prev_calibration = float(previous.get("calibration", 0) or 0)
    current = _load(bench_path)
    live_calibration = calibrate() if calibration is None else calibration

    failures: List[str] = []
    for section, key, calibrated in TIERS:
        prev_value = _tier_value(prev_bench, section, key)
        cur_value = _tier_value(current, section, key)
        if prev_value is None or cur_value is None:
            continue
        if calibrated:
            if not prev_calibration or not live_calibration:
                continue
            prev_norm = prev_value / prev_calibration
            cur_norm = cur_value / live_calibration
        else:
            prev_norm, cur_norm = prev_value, cur_value
        if prev_norm <= 0:
            continue
        if cur_norm < prev_norm * (1.0 - threshold):
            drop = 1.0 - cur_norm / prev_norm
            failures.append(
                f"{section}.{key}: {cur_value:,.2f} is {drop:.0%} below the "
                f"previous entry's {prev_value:,.2f}"
                + (" (calibrated)" if calibrated else "")
                + f" — more than the {threshold:.0%} budget"
            )
    return failures


def check_improvement(
    bench_path: str,
    history_dir: str,
    threshold: float = 0.2,
    calibration: Optional[float] = None,
) -> List[str]:
    """The mirror of :func:`check_regression`: tiers that got *better*.

    Returns one message per tier improving by more than ``threshold``
    over the newest history snapshot.  Purely informational — ``repro
    report --check-perf`` surfaces these as info lines so a successful
    optimisation shows up in the report instead of passing silently.
    """
    entries = history_entries(history_dir)
    if not entries:
        return []
    _, previous = entries[-1]
    prev_bench = previous.get("bench", {})
    prev_calibration = float(previous.get("calibration", 0) or 0)
    current = _load(bench_path)
    live_calibration = calibrate() if calibration is None else calibration

    improvements: List[str] = []
    for section, key, calibrated in TIERS:
        prev_value = _tier_value(prev_bench, section, key)
        cur_value = _tier_value(current, section, key)
        if prev_value is None or cur_value is None:
            continue
        if calibrated:
            if not prev_calibration or not live_calibration:
                continue
            prev_norm = prev_value / prev_calibration
            cur_norm = cur_value / live_calibration
        else:
            prev_norm, cur_norm = prev_value, cur_value
        if prev_norm <= 0:
            continue
        if cur_norm > prev_norm * (1.0 + threshold):
            gain = cur_norm / prev_norm - 1.0
            improvements.append(
                f"{section}.{key}: {cur_value:,.2f} is {gain:.0%} above the "
                f"previous entry's {prev_value:,.2f}"
                + (" (calibrated)" if calibrated else "")
            )
    return improvements


def main(argv: List[str], repo_root: Optional[str] = None) -> int:
    """``perf_history.py append|check`` CLI body (returns exit code)."""
    root = repo_root or os.getcwd()
    bench_path = os.path.join(root, "BENCH_throughput.json")
    history_dir = os.path.join(root, "benchmarks", "history")
    if not argv or argv[0] not in ("append", "check"):
        print("usage: perf_history.py append [note] | check [threshold]")
        return 2
    if argv[0] == "append":
        note = argv[1] if len(argv) > 1 else ""
        path = append_snapshot(bench_path, history_dir, note=note)
        print(f"appended {path}")
        return 0
    threshold = float(argv[1]) if len(argv) > 1 else 0.2
    failures = check_regression(bench_path, history_dir, threshold=threshold)
    if failures:
        for failure in failures:
            print(f"PERF REGRESSION: {failure}")
        return 1
    entries = history_entries(history_dir)
    print(
        f"perf trajectory OK: no >{threshold:.0%} regression vs entry "
        f"{entries[-1][0] if entries else '(none)'} on any tier"
    )
    return 0
