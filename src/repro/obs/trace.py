"""Structured span tracing with a JSONL sink.

A :class:`SpanTracer` emits three record types, one JSON object per
line:

``span_start``
    ``{"type": "span_start", "id": 3, "parent": 1, "name": "tase",
    "ts": <unix seconds>, "attrs": {...}}``
``span_end``
    ``{"type": "span_end", "id": 3, "name": "tase", "ts": ...,
    "dur": <seconds>, "error": <exception type or absent>}``
``event``
    ``{"type": "event", "name": "contract", "parent": <enclosing span
    id or null>, "ts": ..., "attrs": {...}}``

Span ids are small integers unique within one tracer; ``parent`` links
nested spans (``recover`` > ``tase``), so a trace file reconstructs the
phase tree of every contract in a batch.  Durations come from
``time.perf_counter()`` sampled only at span boundaries; the engine hot
loop never touches the tracer.

:data:`NULL_TRACER` is the disabled backend: ``span`` returns a shared
no-op context manager and ``event`` does nothing.
"""

from __future__ import annotations

import json
import time
from typing import IO, Any, Dict, List, Optional


class _Span:
    """Context manager for one span; created by :meth:`SpanTracer.span`."""

    __slots__ = ("_tracer", "name", "attrs", "span_id", "_t0")

    def __init__(self, tracer: "SpanTracer", name: str, attrs: Dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id: Optional[int] = None
        self._t0 = 0.0

    def __enter__(self) -> "_Span":
        tracer = self._tracer
        self.span_id = tracer._next_id
        tracer._next_id += 1
        record = {
            "type": "span_start",
            "id": self.span_id,
            "parent": tracer.current_span_id,
            "name": self.name,
            "ts": time.time(),
        }
        if self.attrs:
            record["attrs"] = self.attrs
        tracer._stack.append(self.span_id)
        tracer._emit(record)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration = time.perf_counter() - self._t0
        tracer = self._tracer
        if tracer._stack and tracer._stack[-1] == self.span_id:
            tracer._stack.pop()
        record = {
            "type": "span_end",
            "id": self.span_id,
            "name": self.name,
            "ts": time.time(),
            "dur": duration,
        }
        if exc_type is not None:
            record["error"] = exc_type.__name__
        tracer._emit(record)


class SpanTracer:
    """Emits span/event records to a file-like sink (or an in-memory list).

    With ``out=None`` records accumulate as dicts on :attr:`records`
    (the test/in-process mode); with a file-like ``out`` each record is
    written as one JSON line.  The tracer is process-local and not
    thread-safe — each worker builds its own (batch workers report
    through their metrics registry instead; trace records are emitted
    by the parent).
    """

    def __init__(self, out: Optional[IO[str]] = None) -> None:
        self._out = out
        self.records: List[dict] = []
        self._next_id = 1
        self._stack: List[int] = []

    @property
    def current_span_id(self) -> Optional[int]:
        return self._stack[-1] if self._stack else None

    def _emit(self, record: dict) -> None:
        if self._out is not None:
            self._out.write(json.dumps(record) + "\n")
        else:
            self.records.append(record)

    def span(self, name: str, **attrs: Any) -> _Span:
        """A context manager emitting ``span_start``/``span_end``."""
        return _Span(self, name, attrs)

    def event(self, name: str, **attrs: Any) -> None:
        """A point-in-time record parented to the enclosing span."""
        self._emit(
            {
                "type": "event",
                "name": name,
                "parent": self.current_span_id,
                "ts": time.time(),
                "attrs": attrs,
            }
        )

    def close(self) -> None:
        if self._out is not None and hasattr(self._out, "flush"):
            self._out.flush()


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer(SpanTracer):
    """The disabled tracer: no records, no clock reads."""

    def __init__(self) -> None:
        super().__init__()

    def span(self, name: str, **attrs: Any) -> _NullSpan:  # type: ignore[override]
        return _NULL_SPAN

    def event(self, name: str, **attrs: Any) -> None:
        pass


#: The shared disabled tracer; compare by identity.
NULL_TRACER = NullTracer()


def read_trace(path: str) -> List[dict]:
    """Parse a JSONL trace file, skipping malformed lines."""
    records: List[dict] = []
    try:
        handle = open(path, "r", encoding="utf-8")
    except OSError:
        return records
    with handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict):
                records.append(record)
    return records
