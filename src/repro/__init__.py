"""SigRec reproduction: recover function signatures from EVM bytecode.

This package reimplements the SigRec system (Chen et al.) together with
every substrate it depends on: an EVM disassembler/CFG/interpreter, a
pure-Python Keccak-256, a full ABI codec, Solidity- and Vyper-like code
generators used to synthesize the evaluation corpus, the baselines the
paper compares against, and the three downstream applications
(ParChecker, fuzzing, Erays+ reverse engineering).

Top-level convenience API::

    from repro import SigRec
    tool = SigRec()
    for sig in tool.recover(runtime_bytecode):
        print(sig)
"""

from repro.sigrec.api import RecoveredSignature, SigRec

__all__ = ["SigRec", "RecoveredSignature", "__version__"]

__version__ = "1.0.0"
