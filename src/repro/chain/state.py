"""World state: the account trie, minus the trie.

Accounts map addresses to (balance, nonce, code, storage).  Snapshots
support the EVM's transactional semantics: a failed inner call must
roll back every state change it made, including in re-entrant calls.
Snapshots are deep copies — simple and correct at simulation scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.evm.keccak import keccak256

_ADDRESS_MASK = (1 << 160) - 1


@dataclass
class Account:
    balance: int = 0
    nonce: int = 0
    code: bytes = b""
    storage: Dict[int, int] = field(default_factory=dict)

    def copy(self) -> "Account":
        return Account(self.balance, self.nonce, self.code, dict(self.storage))


class WorldState:
    """All accounts, with snapshot/rollback."""

    def __init__(self) -> None:
        self._accounts: Dict[int, Account] = {}

    def account(self, address: int) -> Account:
        """The account at ``address``, created empty on first touch."""
        address &= _ADDRESS_MASK
        existing = self._accounts.get(address)
        if existing is None:
            existing = Account()
            self._accounts[address] = existing
        return existing

    def exists(self, address: int) -> bool:
        return (address & _ADDRESS_MASK) in self._accounts

    def transfer(self, sender: int, recipient: int, value: int) -> bool:
        """Move ``value`` wei; False when the sender cannot afford it."""
        if value == 0:
            return True
        source = self.account(sender)
        if source.balance < value:
            return False
        source.balance -= value
        self.account(recipient).balance += value
        return True

    def new_contract_address(self, creator: int) -> int:
        """Deterministic CREATE-style address: hash(creator, nonce)."""
        creator_account = self.account(creator)
        seed = creator.to_bytes(20, "big") + creator_account.nonce.to_bytes(8, "big")
        creator_account.nonce += 1
        return int.from_bytes(keccak256(seed)[12:], "big")

    # -- snapshots -------------------------------------------------------

    def snapshot(self) -> Dict[int, Account]:
        return {addr: acct.copy() for addr, acct in self._accounts.items()}

    def restore(self, snapshot: Dict[int, Account]) -> None:
        self._accounts = {addr: acct.copy() for addr, acct in snapshot.items()}

    def __len__(self) -> int:
        return len(self._accounts)
