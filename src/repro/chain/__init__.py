"""A miniature Ethereum: world state, message calls, blocks.

The paper's §6.1 experiment scans 91M transactions across 556k blocks;
this package is the corresponding substrate: a world state of accounts
(balance, nonce, code, storage), a message-call machine that executes
CALL/DELEGATECALL/STATICCALL/CREATE *for real* (re-entrant, with state
rollback on failure), contract deployment through init code, and a
chain that mines transactions into blocks.
"""

from repro.chain.state import Account, WorldState
from repro.chain.machine import CallMachine, Message
from repro.chain.chain import Block, Chain, Receipt, Transaction, make_init_code

__all__ = [
    "Account",
    "WorldState",
    "CallMachine",
    "Message",
    "Chain",
    "Block",
    "Transaction",
    "Receipt",
    "make_init_code",
]
