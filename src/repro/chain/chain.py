"""Blocks, transactions and a chain to mine them into.

The §6.1 experiment's substrate: deploy contracts (through init code),
send transactions, mine them into blocks, and later scan the blocks'
transactions — exactly the shape of the paper's "analyze all
transactions in 556,361 blocks" pipeline, at simulation scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.chain.machine import CallMachine, Message
from repro.chain.state import WorldState
from repro.evm.asm import Assembler
from repro.evm.interpreter import BlockContext

#: Seconds between consecutive blocks of the simulated chain.
BLOCK_INTERVAL = 12


def make_init_code(runtime: bytes) -> bytes:
    """Wrap runtime bytecode in a constructor that returns it.

    The standard deployment prologue: copy the appended runtime code to
    memory and RETURN it; the EVM installs whatever the init code
    returns as the account's code.
    """
    asm = Assembler()
    asm.push(len(runtime))  # length
    asm.push_label("runtime")  # code offset of the payload
    asm.push(0)  # memory destination
    asm.op("CODECOPY")
    asm.push(len(runtime)).push(0).op("RETURN")
    asm.label("runtime")
    asm.raw(runtime)
    return asm.assemble()


@dataclass(frozen=True)
class Transaction:
    sender: int
    to: Optional[int]  # None -> contract creation
    data: bytes = b""
    value: int = 0

    @property
    def is_create(self) -> bool:
        return self.to is None


@dataclass
class Receipt:
    transaction: Transaction
    success: bool
    return_data: bytes = b""
    error: Optional[str] = None
    contract_address: Optional[int] = None
    gas_used: int = 0
    logs: List[bytes] = field(default_factory=list)


@dataclass
class Block:
    number: int
    transactions: List[Transaction] = field(default_factory=list)
    receipts: List[Receipt] = field(default_factory=list)


class Chain:
    """A single-node chain: state + ordered blocks."""

    def __init__(self, genesis: Optional[BlockContext] = None) -> None:
        self.state = WorldState()
        self.blocks: List[Block] = []
        self.genesis = genesis if genesis is not None else BlockContext(number=0)
        self._machine = CallMachine(self.state, block=self.genesis)
        self._pending: List[Transaction] = []
        self._pending_receipts: List[Receipt] = []

    def block_context(self, number: Optional[int] = None) -> BlockContext:
        """The block context of block ``number`` (default: the pending
        block).  Numbers and timestamps advance deterministically from
        the genesis context; executing transactions see these values
        through the block-context opcodes (TIMESTAMP, NUMBER, ...)."""
        if number is None:
            number = len(self.blocks)
        return BlockContext(
            coinbase=self.genesis.coinbase,
            timestamp=self.genesis.timestamp + BLOCK_INTERVAL * number,
            number=self.genesis.number + number,
            difficulty=self.genesis.difficulty,
            gaslimit=self.genesis.gaslimit,
            chainid=self.genesis.chainid,
            basefee=self.genesis.basefee,
            gasprice=self.genesis.gasprice,
        )

    # ------------------------------------------------------------------

    def fund(self, address: int, amount: int) -> None:
        """Credit an externally-owned account (the faucet)."""
        self.state.account(address).balance += amount

    def deploy(self, runtime: bytes, sender: int = 0xFA0CE7,
               value: int = 0) -> int:
        """Deploy runtime bytecode (wrapped in init code); returns the
        new contract's address.  The deployment transaction is recorded
        in the pending block."""
        init_code = make_init_code(runtime)
        tx = Transaction(sender=sender, to=None, data=init_code, value=value)
        receipt = self._apply(tx)
        if not receipt.success:
            raise RuntimeError(f"deployment failed: {receipt.error}")
        assert receipt.contract_address is not None
        return receipt.contract_address

    def send(self, tx: Transaction) -> Receipt:
        """Execute a transaction; it joins the pending block."""
        return self._apply(tx)

    def call(self, to: int, data: bytes, sender: int = 0xCA11E4,
             value: int = 0) -> Receipt:
        """Convenience: build and send a message-call transaction."""
        return self.send(Transaction(sender=sender, to=to, data=data, value=value))

    def mine(self) -> Block:
        """Seal the pending transactions into a block."""
        block = Block(
            number=len(self.blocks),
            transactions=list(self._pending),
            receipts=list(self._pending_receipts),
        )
        self.blocks.append(block)
        self._pending.clear()
        self._pending_receipts.clear()
        return block

    def code_at(self, address: int) -> bytes:
        return self.state.account(address).code

    @property
    def transaction_count(self) -> int:
        return sum(len(b.transactions) for b in self.blocks) + len(self._pending)

    # ------------------------------------------------------------------

    def _apply(self, tx: Transaction) -> Receipt:
        self._machine.block = self.block_context()
        if tx.is_create:
            result, address = self._machine.create(tx.sender, tx.value, tx.data)
            receipt = Receipt(
                transaction=tx,
                success=result.success,
                return_data=b"",
                error=result.error,
                contract_address=address if result.success else None,
                gas_used=result.gas_used,
            )
        else:
            result = self._machine.execute(
                Message(sender=tx.sender, to=tx.to, value=tx.value, data=tx.data)
            )
            receipt = Receipt(
                transaction=tx,
                success=result.success,
                return_data=result.return_data,
                error=result.error,
                gas_used=result.gas_used,
                logs=result.logs,
            )
        self._pending.append(tx)
        self._pending_receipts.append(receipt)
        return receipt
