"""The message-call machine: real cross-contract execution.

Wires the single-contract interpreter into the world state: when a
contract executes CALL / CALLCODE / DELEGATECALL / STATICCALL / CREATE,
the machine recursively runs the callee against the state, with

* value transfer (rolled back when the callee fails),
* per-call storage isolation (the callee's writes commit only on
  success),
* re-entrancy (a callee may call back into its caller),
* a call-depth limit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.chain.state import WorldState
from repro.evm.interpreter import BlockContext, ExecutionResult, Interpreter


@dataclass
class Message:
    """One message call."""

    sender: int
    to: Optional[int]  # None -> contract creation
    value: int = 0
    data: bytes = b""


@dataclass
class CallTraceEntry:
    """One frame in the (flattened) call trace of a transaction."""

    kind: str
    sender: int
    to: int
    value: int
    depth: int
    success: bool


class CallDepthExceeded(Exception):
    pass


class CallMachine:
    """Executes messages against a :class:`WorldState`."""

    def __init__(self, state: WorldState, max_depth: int = 16,
                 max_steps: int = 200_000,
                 block: Optional[BlockContext] = None) -> None:
        self.state = state
        self.max_depth = max_depth
        self.max_steps = max_steps
        # Block context for every frame of the current transaction; the
        # chain updates this per pending block.
        self.block = block if block is not None else BlockContext()
        self.trace: List[CallTraceEntry] = []

    # ------------------------------------------------------------------

    def execute(self, message: Message) -> ExecutionResult:
        """Run one top-level message (a transaction's execution)."""
        self.trace = []
        if message.to is None:
            result, _address = self._create(
                message.sender, message.value, message.data, depth=0
            )
            return result
        return self._call(
            "call", message.sender, message.to, message.to,
            message.value, message.data, depth=0,
        )

    def create(self, sender: int, value: int, init_code: bytes) -> Tuple[ExecutionResult, int]:
        """Deploy a contract; returns (init execution result, address)."""
        self.trace = []
        return self._create(sender, value, init_code, depth=0)

    # ------------------------------------------------------------------

    def _call(
        self,
        kind: str,
        sender: int,
        code_address: int,
        storage_address: int,
        value: int,
        data: bytes,
        depth: int,
    ) -> ExecutionResult:
        if depth > self.max_depth:
            result = ExecutionResult(success=False, error="CallDepthExceeded")
            return result

        snapshot = self.state.snapshot()
        if not self.state.transfer(sender, storage_address, value):
            return ExecutionResult(success=False, error="InsufficientBalance")

        code_account = self.state.account(code_address)
        storage_account = self.state.account(storage_address)
        if not code_account.code:
            # Plain value transfer to an EOA (or empty account).
            result = ExecutionResult(success=True)
            self.trace.append(
                CallTraceEntry(kind, sender, storage_address, value, depth, True)
            )
            return result

        def handler(inner_kind: str, to: int, inner_value: int,
                    payload: bytes, frame):
            # Make this frame's in-flight storage writes visible to the
            # callee (re-entrant reads see them, as on mainnet).  The
            # frame is the live ConcreteDomain of the calling frame,
            # handed over by the CALL-family domain ops.
            self.state.account(storage_address).storage = dict(frame.storage)
            outcome = self._dispatch_inner(
                inner_kind, storage_address, to, inner_value, payload, depth + 1
            )
            # And pick up whatever the callee (possibly re-entrantly)
            # wrote to this frame's storage.  In place: frame.storage is
            # the same dict as interpreter.storage.
            frame.storage.clear()
            frame.storage.update(self.state.account(storage_address).storage)
            return outcome

        interpreter = Interpreter(
            code_account.code,
            storage=storage_account.storage,
            max_steps=self.max_steps,
            call_handler=handler,
            block=self.block,
            self_balance=self.state.account(storage_address).balance,
        )
        result = interpreter.call(
            data, caller=sender, callvalue=value, address=storage_address
        )
        if result.success:
            # Commit the callee's storage.  Re-fetch the account: a
            # rolled-back inner call rebuilt the account objects.
            self.state.account(storage_address).storage = interpreter.storage
        else:
            self.state.restore(snapshot)
        # For delegatecall/callcode the interesting address is the code
        # being borrowed, not the storage context.
        traced_to = (
            code_address if kind in ("delegatecall", "callcode")
            else storage_address
        )
        self.trace.append(
            CallTraceEntry(kind, sender, traced_to, value, depth, result.success)
        )
        return result

    def _dispatch_inner(
        self, kind: str, current: int, to: int, value: int, payload: bytes,
        depth: int,
    ) -> Tuple[bool, bytes]:
        if kind == "create":
            result, address = self._create(current, value, payload, depth)
            if not result.success:
                return False, b""
            return True, address.to_bytes(32, "big")
        if kind == "call":
            result = self._call("call", current, to, to, value, payload, depth)
        elif kind == "callcode":
            result = self._call("callcode", current, to, current, value,
                                payload, depth)
        elif kind == "delegatecall":
            # Caller's storage AND caller's msg.sender semantics are
            # approximated: storage context stays with the caller.
            result = self._call("delegatecall", current, to, current, 0,
                                payload, depth)
        elif kind == "staticcall":
            snapshot = self.state.snapshot()
            result = self._call("staticcall", current, to, to, 0, payload, depth)
            # Static calls must not mutate state: roll back writes but
            # keep the return data.
            self.state.restore(snapshot)
        else:  # pragma: no cover - handler kinds are fixed
            return False, b""
        return result.success, result.return_data

    def _create(
        self, sender: int, value: int, init_code: bytes, depth: int
    ) -> Tuple[ExecutionResult, int]:
        if depth > self.max_depth:
            return ExecutionResult(success=False, error="CallDepthExceeded"), 0
        snapshot = self.state.snapshot()
        address = self.state.new_contract_address(sender)
        if not self.state.transfer(sender, address, value):
            self.state.restore(snapshot)
            return ExecutionResult(success=False, error="InsufficientBalance"), 0

        def handler(inner_kind: str, to: int, inner_value: int,
                    payload: bytes, frame):
            return self._dispatch_inner(
                inner_kind, address, to, inner_value, payload, depth + 1
            )

        interpreter = Interpreter(
            init_code, max_steps=self.max_steps, call_handler=handler,
            block=self.block,
            self_balance=self.state.account(address).balance,
        )
        result = interpreter.call(b"", caller=sender, callvalue=value,
                                  address=address)
        if not result.success:
            self.state.restore(snapshot)
            return result, 0
        account = self.state.account(address)
        account.code = result.return_data
        account.storage = interpreter.storage
        self.trace.append(
            CallTraceEntry("create", sender, address, value, depth, True)
        )
        return result, address
