"""Chain-scale batch recovery: work-stealing, memoized, cache-backed.

Per-contract analysis is embarrassingly parallel — one bytecode never
needs another's results — so a chain-sized corpus (the paper's RQ3:
37,009,570 deployed contracts, 368,679 unique bytecodes) shards cleanly
across cores.  :class:`BatchRecovery` composes four layers:

1. **Deduplication** — identical bytecodes become one job, and every
   duplicate gets a fresh copy of the finished result (input order is
   preserved).
2. **Persistent cache** — with a ``cache_dir``, finished results are
   read from / written to a content-addressed on-disk store
   (:mod:`repro.sigrec.cache`), so repeat runs skip the engine entirely.
3. **Function-body memo** — each worker process keeps a shared
   :class:`~repro.sigrec.cache.FunctionMemo` (plus an on-disk tier
   under ``<cache_dir>/fnmemo``), so clone-heavy corpora analyze each
   shared function body once per process / once per cache directory.
   An :class:`~repro.sigrec.cache.InferenceMemo` rides alongside it
   (disk tier under ``<cache_dir>/infmemo``): when a body's preimage
   differs but its canonical event stream matches, TASE still runs yet
   the type-inference pass is replayed from the memo.
4. **Work-stealing scheduler** — cache misses become (contract,
   selector-group) *units* on one shared queue drained by a
   ``ProcessPoolExecutor`` via ``submit``/``as_completed``: a free
   worker immediately pulls the next unit instead of idling behind a
   pre-assigned straggler.  Contracts with many selectors split into
   several units, so one pathological contract no longer serializes the
   tail of the run.  ``workers=0`` drains the identical unit list
   serially, producing byte-identical results and counters.

Each unit runs with a fresh :class:`RuleTracker` and the per-unit
counts are merged back into the parent tool's tracker (rule counters
are purely additive, so the merged totals equal a serial run's), which
keeps the Fig.-19 rule-frequency statistics correct under any worker
count and any cache state.
"""

from __future__ import annotations

import hashlib
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from functools import partial
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.obs import (
    LEDGER_SCHEMA_VERSION,
    NULL_REGISTRY,
    NULL_TRACER,
    HotLoopProfiler,
    MetricsRegistry,
    SpanTracer,
)
from repro.obs.ledger import RunLedger
from repro.obs.slowlog import SlowLog
from repro.sigrec.api import RecoveredSignature, SigRec
from repro.sigrec.cache import FunctionMemo, InferenceMemo, ResultCache
from repro.sigrec.selectors import extract_selectors

#: Default selector count above which one contract splits into several
#: scheduler units.  Small enough that a monster dispatcher becomes
#: parallel work, large enough that typical contracts stay one unit
#: (per-unit overhead is one fresh SigRec + one static analysis).
DEFAULT_UNIT_SIZE = 8

#: One (contract, selector-group) scheduler unit:
#: (job index, unit index, bytecode, only, exclude).
_Unit = Tuple[int, int, bytes, Optional[FrozenSet[int]], FrozenSet[int]]

#: Per-process shared function memos: (fingerprint, memo_dir) ->
#: (run token, memo).  Living at module level makes the memo survive
#: across the many short-lived ``SigRec`` instances a worker constructs
#: — that persistence is the whole point: the Nth unit with a familiar
#: function body skips its TASE shard entirely.  The token scopes the
#: *memory* tier to one ``recover_all`` call: a forked worker inherits
#: the parent's module state, so without the token a serial run would
#: pre-warm a later parallel run's workers and serial/parallel counter
#: aggregates would silently diverge.  Cross-run reuse is the on-disk
#: tier's job (``memo_dir``), which is deliberately token-free.
_WORKER_MEMOS: Dict[
    Tuple[str, Optional[str]], Tuple[str, FunctionMemo]
] = {}

#: Per-process shared inference memos, with the same (fingerprint,
#: directory) keying and run-token scoping as :data:`_WORKER_MEMOS`.
#: Kept separate because the two memos have independent directories and
#: one can be disabled without the other.
_WORKER_INF_MEMOS: Dict[
    Tuple[str, Optional[str]], Tuple[str, InferenceMemo]
] = {}


def _worker_memo(
    options: Dict[str, object], memo_dir: Optional[str], token: str
) -> FunctionMemo:
    memo = FunctionMemo(options, directory=memo_dir)
    key = (memo.fingerprint, memo_dir)
    held = _WORKER_MEMOS.get(key)
    if held is not None and held[0] == token:
        return held[1]
    _WORKER_MEMOS[key] = (token, memo)
    return memo


def _worker_inf_memo(
    options: Dict[str, object], inf_memo_dir: Optional[str], token: str
) -> InferenceMemo:
    memo = InferenceMemo(options, directory=inf_memo_dir)
    key = (memo.fingerprint, inf_memo_dir)
    held = _WORKER_INF_MEMOS.get(key)
    if held is not None and held[0] == token:
        return held[1]
    _WORKER_INF_MEMOS[key] = (token, memo)
    return memo


def _analyze_unit(
    options: Dict[str, object],
    collect_metrics: bool,
    memo_dir: Optional[str],
    inf_memo_dir: Optional[str],
    token: str,
    obs_opts: Dict[str, object],
    unit: _Unit,
) -> Tuple[int, int, List[RecoveredSignature], Dict[str, int],
           Optional[dict], float, int, Tuple[int, int, int, int],
           Optional[dict]]:
    """Worker entry point: one scheduler unit, a fresh tool, delta counts.

    Top-level so it pickles for the process pool; also used verbatim by
    the serial path so ``workers=0`` and ``workers=N`` run the same code.
    With ``collect_metrics`` the unit runs against its own registry and
    returns the serialized document, which the parent merges — counters
    are additive, so the aggregate equals a serial run's (the same
    pattern as the per-unit :class:`RuleTracker` merge).  The elapsed
    wall time, worker pid and the unit's (memo hits, memo misses,
    inference-memo hits, inference-memo misses) delta ride along for
    trace events, steal accounting and the batch stats — the memo
    numbers come from the memos' own counters so they survive
    metrics-free runs.

    ``obs_opts`` flags the deep-observability payloads: ``"ledger"``
    (run-ledger records), ``"spans"`` (the unit's span tree, for the
    slowlog) and ``"profiler"`` (a mode string enabling hot-loop
    attribution).  Whatever is enabled rides home in the final tuple
    slot as plain lists/dicts, merged additively by the parent — the
    same ship-the-document pattern as the metrics registry.
    """
    job_index, unit_index, bytecode, only, exclude = unit
    registry = MetricsRegistry() if collect_metrics else None
    ledger = RunLedger() if obs_opts.get("ledger") else None
    tracer = SpanTracer() if obs_opts.get("spans") else None
    profiler_mode = obs_opts.get("profiler")
    profiler = (
        HotLoopProfiler(mode=profiler_mode) if profiler_mode else None
    )
    tool = SigRec(
        metrics=registry, tracer=tracer, ledger=ledger, profiler=profiler,
        **options,
    )
    memo = None
    probed_before = (0, 0)
    if tool.memo:
        memo = _worker_memo(tool.options(), memo_dir, token)
        tool.set_function_memo(memo)
        probed_before = (memo.hits, memo.misses)
        # The shared memo reports into whichever unit is running; a
        # worker processes one unit at a time, so this is race-free.
        memo.metrics = registry if registry is not None else NULL_REGISTRY
    inf_memo = None
    inf_before = (0, 0)
    if tool.inference_memo:
        inf_memo = _worker_inf_memo(tool.options(), inf_memo_dir, token)
        tool.set_inference_memo(inf_memo)
        inf_before = (inf_memo.hits, inf_memo.misses)
        inf_memo.metrics = (
            registry if registry is not None else NULL_REGISTRY
        )
    start = time.perf_counter()
    signatures = tool.recover(bytecode, only=only, exclude=exclude)
    elapsed = time.perf_counter() - start
    fn_delta = (0, 0)
    if memo is not None:
        memo.metrics = NULL_REGISTRY
        fn_delta = (
            memo.hits - probed_before[0], memo.misses - probed_before[1]
        )
    inf_delta = (0, 0)
    if inf_memo is not None:
        inf_memo.metrics = NULL_REGISTRY
        inf_delta = (
            inf_memo.hits - inf_before[0], inf_memo.misses - inf_before[1]
        )
    probed = fn_delta + inf_delta
    counts = {r: c for r, c in tool.tracker.counts.items() if c}
    doc = registry.to_dict() if registry is not None else None
    obs: Optional[dict] = None
    if ledger is not None or tracer is not None or profiler is not None:
        obs = {
            "ledger": ledger.records if ledger is not None else [],
            "spans": tracer.records if tracer is not None else [],
            "profile": profiler.counts if profiler is not None else {},
            "diagnostics": [
                {"kind": d.kind, "detail": d.detail}
                for d in tool.last_diagnostics
            ],
        }
    return (job_index, unit_index, signatures, counts, doc, elapsed,
            os.getpid(), probed, obs)


@dataclass
class BatchStats:
    """Throughput accounting for one :meth:`BatchRecovery.recover_all`."""

    total: int = 0  # contracts submitted
    unique: int = 0  # jobs after deduplication
    analyzed: int = 0  # jobs that actually ran the engine
    cache_hits: int = 0
    cache_misses: int = 0
    workers: int = 0  # 0 = serial in-process
    elapsed_seconds: float = 0.0
    units: int = 0  # scheduler units the analyzed jobs became
    split_contracts: int = 0  # jobs that became more than one unit
    steals: int = 0  # units that ran off their pre-shard slot
    memo_hits: int = 0  # function-body memo probes across all units
    memo_misses: int = 0
    inference_memo_hits: int = 0  # inference-memo probes across all units
    inference_memo_misses: int = 0

    @property
    def unique_ratio(self) -> float:
        return self.unique / self.total if self.total else 0.0

    @property
    def cache_hit_rate(self) -> float:
        probed = self.cache_hits + self.cache_misses
        return self.cache_hits / probed if probed else 0.0

    @property
    def memo_hit_rate(self) -> float:
        probed = self.memo_hits + self.memo_misses
        return self.memo_hits / probed if probed else 0.0

    @property
    def inference_memo_hit_rate(self) -> float:
        probed = self.inference_memo_hits + self.inference_memo_misses
        return self.inference_memo_hits / probed if probed else 0.0

    @property
    def contracts_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.total / self.elapsed_seconds

    def throughput_text(self) -> str:
        """Human rendering of the rate, honest about warm-cache runs.

        A fully warm run can finish faster than the timer's useful
        resolution, making ``total / elapsed`` either a division by
        (near) zero or a meaningless astronomic figure; render ``n/a``
        instead of a misleading ``0`` in that case.
        """
        if self.total and 0 < self.elapsed_seconds:
            rate = self.contracts_per_second
            if rate < 10_000_000:
                return f"{rate:,.0f} contracts/s"
        return "n/a contracts/s"

    def summary(self) -> str:
        """One line for the CLI's ``--time`` flag / benchmark logs."""
        parts = [
            f"{self.total} contracts "
            f"({self.unique} unique, {self.unique_ratio:.0%})",
            f"{self.elapsed_seconds:.2f}s",
            self.throughput_text(),
            f"workers={self.workers or 'serial'}",
        ]
        if self.units:
            unit_note = f"{self.units} units"
            if self.split_contracts:
                unit_note += f" ({self.split_contracts} contracts split)"
            if self.steals:
                unit_note += f", {self.steals} stolen"
            parts.append(unit_note)
        if self.cache_hits or self.cache_misses:
            parts.append(
                f"cache {self.cache_hits} hits / {self.cache_misses} misses "
                f"({self.cache_hit_rate:.0%} hit rate)"
            )
        else:
            parts.append("cache off")
        if self.memo_hits or self.memo_misses:
            parts.append(
                f"memo {self.memo_hits} hits / {self.memo_misses} misses "
                f"({self.memo_hit_rate:.0%} hit rate)"
            )
        if self.inference_memo_hits or self.inference_memo_misses:
            parts.append(
                f"infmemo {self.inference_memo_hits} hits / "
                f"{self.inference_memo_misses} misses "
                f"({self.inference_memo_hit_rate:.0%} hit rate)"
            )
        return " | ".join(parts)


class BatchRecovery:
    """Recovers signatures for many bytecodes, in parallel and cached.

    ``tool`` supplies the engine options and accumulates rule-usage
    statistics; one is created with defaults when omitted.  ``workers``
    is the process-pool size (``None`` means ``os.cpu_count()``; ``0``
    means serial in-process).  ``cache_dir`` enables the persistent
    result cache plus the on-disk function-body memo tier (under
    ``<cache_dir>/fnmemo``) and the on-disk inference-memo tier (under
    ``<cache_dir>/infmemo``).  ``unit_size`` is the selector count above
    which one contract splits into several scheduler units (``0``
    disables splitting).
    """

    def __init__(
        self,
        tool: Optional[SigRec] = None,
        workers: Optional[int] = None,
        cache_dir: Optional[str] = None,
        unit_size: int = DEFAULT_UNIT_SIZE,
        slowlog: Optional[SlowLog] = None,
    ) -> None:
        self.tool = tool if tool is not None else SigRec()
        # Telemetry flows through the tool's backends: worker documents
        # merge into ``metrics``, per-contract records go to ``tracer``,
        # worker run-ledger records append to ``ledger`` and worker
        # hot-loop tallies fold into ``profiler`` — so batch and serial
        # runs aggregate identically.  ``slowlog`` additionally keeps
        # the K slowest units with their span trees and diagnostics.
        self.metrics = self.tool.metrics
        self.tracer = self.tool.tracer
        self.ledger = self.tool.ledger
        self.profiler = self.tool.profiler
        self.slowlog = slowlog
        if workers is None:
            workers = os.cpu_count() or 1
        self.workers = max(0, workers)
        self.unit_size = max(0, unit_size)
        self.cache: Optional[ResultCache] = (
            ResultCache(cache_dir, self.tool.options(), metrics=self.metrics)
            if cache_dir is not None
            else None
        )
        self.memo_dir: Optional[str] = (
            os.path.join(cache_dir, "fnmemo") if cache_dir is not None else None
        )
        self.inf_memo_dir: Optional[str] = (
            os.path.join(cache_dir, "infmemo")
            if cache_dir is not None
            else None
        )
        self.stats = BatchStats()

    # ------------------------------------------------------------------

    def recover_all(
        self, bytecodes: Sequence[bytes], deduplicate: bool = True
    ) -> List[List[RecoveredSignature]]:
        """One result list per input, in input order.

        Every entry is an independent list object: mutating one result
        never affects another, even for duplicated bytecodes.
        """
        # One root span per batch: workers run uninstrumented tracers
        # (their telemetry arrives as merged registry documents), so
        # this span plus the per-contract events is the whole trace.
        with self.tracer.span(
            "batch", contracts=len(bytecodes), workers=self.workers
        ):
            return self._recover_all(bytecodes, deduplicate)

    def profile_all(
        self, bytecodes: Sequence[bytes], deduplicate: bool = True
    ):
        """One :class:`~repro.analysis.report.ContractProfile` per input.

        Runs :meth:`recover_all` first (parallel, cache-backed), then
        folds each unique bytecode's signatures and static analysis into
        its profile.  Profiles ride in the result-cache entries: a warm
        run rehydrates the stored document instead of re-analyzing, and
        a cold run attaches the freshly built document to the entry it
        just wrote.  Documents are deterministic, so serial, parallel
        and cached runs all render byte-identically.
        """
        from repro.analysis.report import ContractProfile

        results = self.recover_all(bytecodes, deduplicate=deduplicate)
        profiles: Dict[bytes, ContractProfile] = {}
        out = []
        for code, signatures in zip(bytecodes, results):
            profile = profiles.get(code)
            if profile is None:
                stored = (
                    self.cache.get_profile(code)
                    if self.cache is not None
                    else None
                )
                if stored is not None:
                    profile = ContractProfile.from_dict(stored)
                else:
                    profile = self.tool.profile(code, signatures)
                    if self.cache is not None:
                        self.cache.attach_profile(code, profile.to_dict())
                profiles[code] = profile
            out.append(profile)
        return out

    def _units_for(self, job_index: int, code: bytes) -> List[_Unit]:
        """Split one cache-miss contract into scheduler units.

        The split is purely a *scheduling* decision, derived from the
        cheap static selector scan so it is identical for the serial and
        parallel paths (counter parity).  Group 0 keeps ``only=None``
        with the other groups excluded: it is the unit that claims the
        fallback and any selector the static scan missed, so every
        recovered selector belongs to exactly one unit.
        """
        selectors = extract_selectors(code) if self.unit_size else []
        if (
            self.unit_size == 0
            or len(selectors) <= self.unit_size
        ):
            return [(job_index, 0, code, None, frozenset())]
        groups = [
            selectors[i:i + self.unit_size]
            for i in range(0, len(selectors), self.unit_size)
        ]
        units: List[_Unit] = [
            (
                job_index,
                0,
                code,
                None,
                frozenset().union(*groups[1:]),
            )
        ]
        for unit_index, group in enumerate(groups[1:], start=1):
            units.append(
                (job_index, unit_index, code, frozenset(group), frozenset())
            )
        return units

    def _recover_all(
        self, bytecodes: Sequence[bytes], deduplicate: bool
    ) -> List[List[RecoveredSignature]]:
        start = time.perf_counter()
        stats = BatchStats(total=len(bytecodes), workers=self.workers)
        # Order-preserving dedup; with deduplicate=False every entry is
        # its own job (the cache still collapses repeat work, but rule
        # counters then count duplicates once each, like the serial
        # non-dedup path).
        if deduplicate:
            jobs: List[bytes] = list(dict.fromkeys(bytecodes))
        else:
            jobs = list(bytecodes)
        stats.unique = len(dict.fromkeys(bytecodes)) if bytecodes else 0

        observing = (
            self.metrics is not NULL_REGISTRY or self.tracer is not NULL_TRACER
        )
        finished: Dict[int, List[RecoveredSignature]] = {}
        pending: List[int] = []
        for index, code in enumerate(jobs):
            cached = self.cache.get(code) if self.cache is not None else None
            if cached is not None:
                signatures, counts = cached
                finished[index] = signatures
                self.tool.tracker.merge(counts)
                if self.ledger is not None:
                    # A cache hit never calls ``recover``, so the parent
                    # writes its ledger record: the "result-cache" tier.
                    self.ledger.append({
                        "schema": LEDGER_SCHEMA_VERSION,
                        "code_sha256": hashlib.sha256(code).hexdigest(),
                        "bytes": len(code),
                        "strategy": "cached",
                        "tier": "result-cache",
                        "partial": False,
                        "functions": len(signatures),
                        "elapsed_seconds": 0.0,
                        "phases": {},
                        "job": index,
                    })
                if observing:
                    self.tracer.event(
                        "contract",
                        index=index,
                        sha=hashlib.sha256(code).hexdigest()[:16],
                        functions=len(signatures),
                        cached=True,
                    )
            else:
                pending.append(index)
        if self.cache is not None:
            stats.cache_hits = len(jobs) - len(pending)
            stats.cache_misses = len(pending)
        stats.analyzed = len(pending)

        units: List[_Unit] = []
        for index in pending:
            job_units = self._units_for(index, jobs[index])
            if len(job_units) > 1:
                stats.split_contracts += 1
            units.extend(job_units)
        stats.units = len(units)

        obs_opts: Dict[str, object] = {
            "ledger": self.ledger is not None,
            "spans": self.slowlog is not None,
            "profiler": (
                self.profiler.mode if self.profiler is not None else None
            ),
        }
        analyze = partial(
            _analyze_unit,
            self.tool.options(),
            self.metrics is not NULL_REGISTRY,
            self.memo_dir,
            self.inf_memo_dir,
            os.urandom(8).hex(),  # memory-tier scope: this run only
            obs_opts,
        )
        if units:
            if self.workers and len(units) > 1:
                outcomes, stats.steals = self._drain_parallel(analyze, units)
            else:
                outcomes = [analyze(unit) for unit in units]
            for outcome in outcomes:
                stats.memo_hits += outcome[7][0]
                stats.memo_misses += outcome[7][1]
                stats.inference_memo_hits += outcome[7][2]
                stats.inference_memo_misses += outcome[7][3]
            self._assemble(jobs, units, outcomes, finished, observing)

        if deduplicate:
            by_code = {code: finished[i] for i, code in enumerate(jobs)}
            out = [list(by_code[code]) for code in bytecodes]
        else:
            out = [list(finished[i]) for i in range(len(jobs))]
        stats.elapsed_seconds = time.perf_counter() - start
        if self.metrics is not NULL_REGISTRY:
            metrics = self.metrics
            metrics.counter("batch.contracts").inc(stats.total)
            metrics.counter("batch.unique").inc(stats.unique)
            metrics.counter("batch.analyzed").inc(stats.analyzed)
            metrics.counter("batch.units").inc(stats.units)
            metrics.histogram("batch.seconds").observe(stats.elapsed_seconds)
            # Scheduler shape is timing-dependent (which worker grabbed
            # which unit), so it must live in gauges: counters would
            # break the exact serial==parallel aggregate guarantee.
            metrics.gauge("batch.queue_peak").set(stats.units)
            metrics.gauge("batch.steals").set(stats.steals)
        self.stats = stats
        return out

    def _drain_parallel(
        self, analyze, units: List[_Unit]
    ) -> Tuple[List[tuple], int]:
        """Shared-queue draining: submit every unit, collect as done.

        ``submit``/``as_completed`` *is* the work-stealing: the executor
        keeps one shared queue and any idle worker takes the next unit,
        so a straggler contract delays only the worker chewing on it.
        The steal count compares where each unit actually ran against
        the fixed pre-sharding (contiguous chunks per worker) the old
        scheduler would have used.
        """
        outcomes: List[tuple] = []
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            futures = {
                pool.submit(analyze, unit): position
                for position, unit in enumerate(units)
            }
            order: List[tuple] = [None] * len(units)  # type: ignore[list-item]
            for future in as_completed(futures):
                order[futures[future]] = future.result()
            outcomes = list(order)
        # Pre-shard slot i*W//N vs the slot (pid, by first appearance in
        # submission order) that actually executed the unit.
        pids: Dict[int, int] = {}
        steals = 0
        chunk = max(1, -(-len(units) // self.workers))  # ceil division
        for position, outcome in enumerate(outcomes):
            pid = outcome[6]
            slot = pids.setdefault(pid, len(pids))
            if slot != min(position // chunk, self.workers - 1):
                steals += 1
        return outcomes, steals

    def _assemble(
        self,
        jobs: List[bytes],
        units: List[_Unit],
        outcomes: List[tuple],
        finished: Dict[int, List[RecoveredSignature]],
        observing: bool,
    ) -> None:
        """Fold per-unit outcomes back into per-contract results."""
        expected: Dict[int, int] = {}
        for job_index, *_rest in units:
            expected[job_index] = expected.get(job_index, 0) + 1
        partial_sigs: Dict[int, List[RecoveredSignature]] = {}
        partial_counts: Dict[int, Dict[str, int]] = {}
        partial_elapsed: Dict[int, float] = {}
        for (job_index, unit_index, signatures, counts, doc, elapsed,
             _pid, _memo, obs) in outcomes:
            partial_sigs.setdefault(job_index, []).extend(signatures)
            merged = partial_counts.setdefault(job_index, {})
            for rule, count in counts.items():
                merged[rule] = merged.get(rule, 0) + count
            partial_elapsed[job_index] = (
                partial_elapsed.get(job_index, 0.0) + elapsed
            )
            if doc is not None:
                self.metrics.merge(doc)
            if obs is not None:
                # Outcomes arrive in unit-submission order, so the
                # merged ledger/profiles are deterministic for a given
                # corpus regardless of worker count.
                if self.ledger is not None:
                    for record in obs["ledger"]:
                        record["job"] = job_index
                        record["unit"] = unit_index
                    self.ledger.extend(obs["ledger"])
                if self.profiler is not None and obs["profile"]:
                    self.profiler.merge(
                        {int(pc): c for pc, c in obs["profile"].items()}
                    )
                if self.slowlog is not None:
                    self.slowlog.offer(
                        elapsed,
                        contract=hashlib.sha256(
                            jobs[job_index]
                        ).hexdigest()[:16],
                        unit=(job_index, unit_index),
                        spans=obs["spans"],
                        diagnostics=obs["diagnostics"],
                    )
        for job_index, signatures in partial_sigs.items():
            # Units cover disjoint selector sets, so sorting restores
            # exactly the order a whole-contract recovery returns.
            signatures.sort(key=lambda sig: sig.selector)
            counts = partial_counts[job_index]
            elapsed = partial_elapsed[job_index]
            finished[job_index] = signatures
            self.tool.tracker.merge(counts)
            if observing:
                self.metrics.histogram("contract.seconds").observe(elapsed)
                self.tracer.event(
                    "contract",
                    index=job_index,
                    sha=hashlib.sha256(jobs[job_index]).hexdigest()[:16],
                    functions=len(signatures),
                    elapsed=elapsed,
                )
            if self.cache is not None:
                self.cache.put(jobs[job_index], signatures, counts)
