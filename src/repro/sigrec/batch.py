"""Chain-scale batch recovery: process-parallel, cache-backed.

Per-contract analysis is embarrassingly parallel — one bytecode never
needs another's results — so a chain-sized corpus (the paper's RQ3:
37,009,570 deployed contracts, 368,679 unique bytecodes) shards cleanly
across cores.  :class:`BatchRecovery` composes three layers:

1. **Deduplication** — identical bytecodes become one job, and every
   duplicate gets a fresh copy of the finished result (input order is
   preserved).
2. **Persistent cache** — with a ``cache_dir``, finished results are
   read from / written to a content-addressed on-disk store
   (:mod:`repro.sigrec.cache`), so repeat runs skip the engine entirely.
3. **Process pool** — cache misses fan out over a
   ``ProcessPoolExecutor``; ``workers=0`` falls back to the in-process
   serial path, which produces byte-identical results.

Each job runs with a fresh :class:`RuleTracker` and the per-bytecode
counts are merged back into the parent tool's tracker (rule counters are
purely additive, so the merged totals equal a serial run's), which keeps
the Fig.-19 rule-frequency statistics correct under any worker count and
any cache state.
"""

from __future__ import annotations

import hashlib
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from functools import partial
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs import NULL_REGISTRY, NULL_TRACER, MetricsRegistry
from repro.sigrec.api import RecoveredSignature, SigRec
from repro.sigrec.cache import ResultCache


def _analyze_one(
    options: Dict[str, object], collect_metrics: bool, bytecode: bytes
) -> Tuple[List[RecoveredSignature], Dict[str, int], Optional[dict], float]:
    """Worker entry point: one bytecode, a fresh tool, delta counts.

    Top-level so it pickles for the process pool; also used verbatim by
    the serial path so ``workers=0`` and ``workers=N`` run the same code.
    With ``collect_metrics`` the job runs against its own registry and
    returns the serialized document, which the parent merges — counters
    are additive, so the aggregate equals a serial run's (the same
    pattern as the per-worker :class:`RuleTracker` merge).  The elapsed
    wall time of the job rides along for per-contract trace events.
    """
    registry = MetricsRegistry() if collect_metrics else None
    tool = SigRec(metrics=registry, **options)
    start = time.perf_counter()
    signatures = tool.recover(bytecode)
    elapsed = time.perf_counter() - start
    counts = {r: c for r, c in tool.tracker.counts.items() if c}
    doc = registry.to_dict() if registry is not None else None
    return signatures, counts, doc, elapsed


@dataclass
class BatchStats:
    """Throughput accounting for one :meth:`BatchRecovery.recover_all`."""

    total: int = 0  # contracts submitted
    unique: int = 0  # jobs after deduplication
    analyzed: int = 0  # jobs that actually ran the engine
    cache_hits: int = 0
    cache_misses: int = 0
    workers: int = 0  # 0 = serial in-process
    elapsed_seconds: float = 0.0

    @property
    def unique_ratio(self) -> float:
        return self.unique / self.total if self.total else 0.0

    @property
    def cache_hit_rate(self) -> float:
        probed = self.cache_hits + self.cache_misses
        return self.cache_hits / probed if probed else 0.0

    @property
    def contracts_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.total / self.elapsed_seconds

    def throughput_text(self) -> str:
        """Human rendering of the rate, honest about warm-cache runs.

        A fully warm run can finish faster than the timer's useful
        resolution, making ``total / elapsed`` either a division by
        (near) zero or a meaningless astronomic figure; render ``n/a``
        instead of a misleading ``0`` in that case.
        """
        if self.total and 0 < self.elapsed_seconds:
            rate = self.contracts_per_second
            if rate < 10_000_000:
                return f"{rate:,.0f} contracts/s"
        return "n/a contracts/s"

    def summary(self) -> str:
        """One line for the CLI's ``--time`` flag / benchmark logs."""
        parts = [
            f"{self.total} contracts "
            f"({self.unique} unique, {self.unique_ratio:.0%})",
            f"{self.elapsed_seconds:.2f}s",
            self.throughput_text(),
            f"workers={self.workers or 'serial'}",
        ]
        if self.cache_hits or self.cache_misses:
            parts.append(
                f"cache {self.cache_hits} hits / {self.cache_misses} misses "
                f"({self.cache_hit_rate:.0%} hit rate)"
            )
        else:
            parts.append("cache off")
        return " | ".join(parts)


class BatchRecovery:
    """Recovers signatures for many bytecodes, in parallel and cached.

    ``tool`` supplies the engine options and accumulates rule-usage
    statistics; one is created with defaults when omitted.  ``workers``
    is the process-pool size (``None`` means ``os.cpu_count()``; ``0``
    means serial in-process).  ``cache_dir`` enables the persistent
    result cache.
    """

    def __init__(
        self,
        tool: Optional[SigRec] = None,
        workers: Optional[int] = None,
        cache_dir: Optional[str] = None,
    ) -> None:
        self.tool = tool if tool is not None else SigRec()
        # Telemetry flows through the tool's backends: worker documents
        # merge into ``metrics`` and per-contract records go to
        # ``tracer``, so batch and serial runs aggregate identically.
        self.metrics = self.tool.metrics
        self.tracer = self.tool.tracer
        if workers is None:
            workers = os.cpu_count() or 1
        self.workers = max(0, workers)
        self.cache: Optional[ResultCache] = (
            ResultCache(cache_dir, self.tool.options(), metrics=self.metrics)
            if cache_dir is not None
            else None
        )
        self.stats = BatchStats()

    # ------------------------------------------------------------------

    def recover_all(
        self, bytecodes: Sequence[bytes], deduplicate: bool = True
    ) -> List[List[RecoveredSignature]]:
        """One result list per input, in input order.

        Every entry is an independent list object: mutating one result
        never affects another, even for duplicated bytecodes.
        """
        # One root span per batch: workers run uninstrumented tracers
        # (their telemetry arrives as merged registry documents), so
        # this span plus the per-contract events is the whole trace.
        with self.tracer.span(
            "batch", contracts=len(bytecodes), workers=self.workers
        ):
            return self._recover_all(bytecodes, deduplicate)

    def _recover_all(
        self, bytecodes: Sequence[bytes], deduplicate: bool
    ) -> List[List[RecoveredSignature]]:
        start = time.perf_counter()
        stats = BatchStats(total=len(bytecodes), workers=self.workers)
        # Order-preserving dedup; with deduplicate=False every entry is
        # its own job (the cache still collapses repeat work, but rule
        # counters then count duplicates once each, like the serial
        # non-dedup path).
        if deduplicate:
            jobs: List[bytes] = list(dict.fromkeys(bytecodes))
        else:
            jobs = list(bytecodes)
        stats.unique = len(dict.fromkeys(bytecodes)) if bytecodes else 0

        observing = (
            self.metrics is not NULL_REGISTRY or self.tracer is not NULL_TRACER
        )
        finished: Dict[int, List[RecoveredSignature]] = {}
        pending: List[int] = []
        for index, code in enumerate(jobs):
            cached = self.cache.get(code) if self.cache is not None else None
            if cached is not None:
                signatures, counts = cached
                finished[index] = signatures
                self.tool.tracker.merge(counts)
                if observing:
                    self.tracer.event(
                        "contract",
                        index=index,
                        sha=hashlib.sha256(code).hexdigest()[:16],
                        functions=len(signatures),
                        cached=True,
                    )
            else:
                pending.append(index)
        if self.cache is not None:
            stats.cache_hits = len(jobs) - len(pending)
            stats.cache_misses = len(pending)
        stats.analyzed = len(pending)

        analyze = partial(
            _analyze_one,
            self.tool.options(),
            self.metrics is not NULL_REGISTRY,
        )
        if pending:
            miss_codes = [jobs[i] for i in pending]
            if self.workers and len(pending) > 1:
                chunksize = max(1, len(pending) // (self.workers * 4))
                with ProcessPoolExecutor(max_workers=self.workers) as pool:
                    outcomes = list(
                        pool.map(analyze, miss_codes, chunksize=chunksize)
                    )
            else:
                outcomes = [analyze(code) for code in miss_codes]
            for index, (signatures, counts, doc, elapsed) in zip(
                pending, outcomes
            ):
                finished[index] = signatures
                self.tool.tracker.merge(counts)
                if doc is not None:
                    self.metrics.merge(doc)
                if observing:
                    self.metrics.histogram("contract.seconds").observe(elapsed)
                    self.tracer.event(
                        "contract",
                        index=index,
                        sha=hashlib.sha256(jobs[index]).hexdigest()[:16],
                        functions=len(signatures),
                        elapsed=elapsed,
                    )
                if self.cache is not None:
                    self.cache.put(jobs[index], signatures, counts)

        if deduplicate:
            by_code = {code: finished[i] for i, code in enumerate(jobs)}
            out = [list(by_code[code]) for code in bytecodes]
        else:
            out = [list(finished[i]) for i in range(len(jobs))]
        stats.elapsed_seconds = time.perf_counter() - start
        if self.metrics is not NULL_REGISTRY:
            metrics = self.metrics
            metrics.counter("batch.contracts").inc(stats.total)
            metrics.counter("batch.unique").inc(stats.unique)
            metrics.counter("batch.analyzed").inc(stats.analyzed)
            metrics.histogram("batch.seconds").observe(stats.elapsed_seconds)
        self.stats = stats
        return out
