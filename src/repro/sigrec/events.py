"""Events recorded by the TASE engine.

The rules (R1-R31) are predicates over the set of events one function
body produced: how the call data was read (CALLDATALOAD/CALLDATACOPY,
with which location expressions and under which branch guards) and how
parameter-tainted values were used afterwards (masks, sign extensions,
comparisons, byte extraction, arithmetic).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.sigrec.expr import Expr, Label


class Guard:
    """One branch condition active when an event fired.

    ``pc`` is the program counter of the JUMPI that consumed the
    condition — distinct loop *levels* have distinct pcs even though a
    concrete loop contributes one guard per unrolled iteration.

    A plain slotted record rather than a dataclass: guard tuples are
    re-hashed on every event-deduplication probe, so the hash is
    computed once at construction and cached.  Treat instances as
    immutable.
    """

    __slots__ = ("condition", "taken", "pc", "_hash")

    def __init__(self, condition: Expr, taken: bool, pc: int = -1) -> None:
        self.condition = condition
        self.taken = taken
        self.pc = pc
        self._hash = hash((condition, taken, pc))

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Guard):
            return NotImplemented
        return (
            self._hash == other._hash
            and self.taken == other.taken
            and self.pc == other.pc
            and self.condition == other.condition
        )

    def __repr__(self) -> str:
        return (
            f"Guard(condition={self.condition!r}, "
            f"taken={self.taken!r}, pc={self.pc!r})"
        )


class CalldataLoadEvent:
    """CALLDATALOAD(loc) -> result, under ``guards``.

    A plain slotted record rather than a frozen dataclass: load events
    are deduplicated through a set, and a dataclass re-hashes its full
    field tuple — including the whole guard chain — on every probe.
    The hash is computed once at construction instead.  Treat
    instances as immutable.
    """

    __slots__ = ("pc", "loc", "result", "guards", "_hash")

    def __init__(
        self,
        pc: int,
        loc: Expr,
        result: Expr,
        guards: Tuple[Guard, ...] = (),
    ) -> None:
        self.pc = pc
        self.loc = loc
        self.result = result
        self.guards = guards
        self._hash = hash((pc, loc, result, guards))

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, CalldataLoadEvent):
            return NotImplemented
        return (
            self._hash == other._hash
            and self.pc == other.pc
            and self.loc == other.loc
            and self.result == other.result
            and self.guards == other.guards
        )

    def __repr__(self) -> str:
        return (
            f"CalldataLoadEvent(pc={self.pc!r}, loc={self.loc!r}, "
            f"result={self.result!r}, guards={self.guards!r})"
        )


class CalldataCopyEvent:
    """CALLDATACOPY(dst, src, length), under ``guards``.

    A plain slotted record rather than a frozen dataclass, matching
    :class:`CalldataLoadEvent`: copy events are deduplicated through a
    set keyed on their field tuple, and the slotted form avoids the
    per-instance ``__dict__``.  Treat instances as immutable.
    """

    __slots__ = ("pc", "dst", "src", "length", "region_id", "guards", "_hash")

    def __init__(
        self,
        pc: int,
        dst: Expr,
        src: Expr,
        length: Expr,
        region_id: int = -1,
        guards: Tuple[Guard, ...] = (),
    ) -> None:
        self.pc = pc
        self.dst = dst
        self.src = src
        self.length = length
        self.region_id = region_id
        self.guards = guards
        self._hash = hash((pc, dst, src, length, region_id, guards))

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, CalldataCopyEvent):
            return NotImplemented
        return (
            self._hash == other._hash
            and self.pc == other.pc
            and self.region_id == other.region_id
            and self.dst == other.dst
            and self.src == other.src
            and self.length == other.length
            and self.guards == other.guards
        )

    def __repr__(self) -> str:
        return (
            f"CalldataCopyEvent(pc={self.pc!r}, dst={self.dst!r}, "
            f"src={self.src!r}, length={self.length!r}, "
            f"region_id={self.region_id!r}, guards={self.guards!r})"
        )


class UseEvent:
    """A parameter-tainted value flowed into a type-revealing operation.

    Slotted with an eager cached hash for the same reason as
    :class:`CalldataLoadEvent`: use events are deduplicated through a
    set on every record.  Treat instances as immutable.

    ``kind`` is one of:

    ============  =====================================================
    and_mask      AND with a constant mask (``operand`` = the mask)
    signextend    SIGNEXTEND k (``operand`` = k)
    bool_mask     two consecutive ISZEROs
    byte          BYTE extraction of a single byte
    signed_op     SDIV/SMOD/SLT/SGT/SAR
    arith         unsigned arithmetic (ADD/SUB/MUL/DIV/MOD/EXP)
    lt_bound      LT against a constant (Vyper range check, upper)
    gt_bound      GT/SGT style lower-bound comparison against a constant
    mstore8       single-byte memory write of a tainted value
    ============  =====================================================
    """

    __slots__ = ("pc", "kind", "labels", "operand", "_hash")

    def __init__(
        self,
        pc: int,
        kind: str,
        labels: FrozenSet[Label],
        operand: Optional[int] = None,
    ) -> None:
        self.pc = pc
        self.kind = kind
        self.labels = labels
        self.operand = operand
        self._hash = hash((pc, kind, labels, operand))

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, UseEvent):
            return NotImplemented
        return (
            self._hash == other._hash
            and self.pc == other.pc
            and self.kind == other.kind
            and self.operand == other.operand
            and self.labels == other.labels
        )

    def __repr__(self) -> str:
        return (
            f"UseEvent(pc={self.pc!r}, kind={self.kind!r}, "
            f"labels={self.labels!r}, operand={self.operand!r})"
        )


@dataclass
class FunctionEvents:
    """Everything TASE observed while executing one function body."""

    selector: int
    loads: list = field(default_factory=list)  # CalldataLoadEvent
    copies: list = field(default_factory=list)  # CalldataCopyEvent
    uses: list = field(default_factory=list)  # UseEvent
    hit_path_limit: bool = False
    vyper_markers: int = 0  # range-check pattern sightings (R20)

    def add_load(self, event: CalldataLoadEvent) -> None:
        if event not in self._load_set:
            self._load_set.add(event)
            self.loads.append(event)

    def add_copy(self, event: CalldataCopyEvent) -> None:
        key = (event.pc, event.dst, event.src, event.length, event.guards)
        if key not in self._copy_set:
            self._copy_set.add(key)
            self.copies.append(event)

    def add_use(self, event: UseEvent) -> None:
        if event not in self._use_set:
            self._use_set.add(event)
            self.uses.append(event)

    def __post_init__(self) -> None:
        self._load_set = set()
        self._copy_set = set()
        self._use_set = set()


# ----------------------------------------------------------------------
# Canonical event-stream digest (the inference-memo key)
# ----------------------------------------------------------------------

def unwrapped_comparison(cond: "Expr") -> Optional["Expr"]:
    """The lt/gt comparison inside a (possibly ISZERO'd) guard condition.

    This is the *only* part of a guard type inference can observe —
    dispatch ``eq`` checks, selector range splits and the ``taken``
    flag never reach a rule — so both the inference engine and the
    event digest must share one definition of "visible comparison".
    """
    while cond.op == "iszero":
        cond = cond.args[0]
    if cond.op in ("lt", "gt", "slt", "sgt"):
        return cond
    return None


def events_digest(events: "FunctionEvents") -> str:
    """Canonical, selector-independent digest of one function's events.

    Inference is a deterministic function of the event stream, so two
    functions whose streams are *equivalent up to incidental per-contract
    numbering* must produce identical recoveries — and may share one
    inference-memo entry.  The digest therefore normalizes everything
    inference cannot observe while keeping everything it can:

    * **pcs** — positive pcs (load, copy, and guard sites) are replaced
      by their dense rank (1, 2, ...) in sorted order; non-positive
      sentinels (``Guard``'s default ``-1``, the ``0`` floor used by
      guard attribution) are kept verbatim.  Ranking preserves every
      order relation the attribution-window logic compares.
    * **memory region ids** — renumbered by first appearance in the
      deterministic serialization walk (loads, then copies, then uses;
      post-order within one expression tree), so clones whose global
      region counter started elsewhere still collide.
    * **excluded fields** — the selector, ``hit_path_limit``, copy
      ``dst`` expressions, use-event pcs, guard ``taken`` flags, and
      any guard whose condition carries no lt/gt comparison (dispatch
      ``eq`` checks embed the selector constant): inference never
      reads them — see :func:`unwrapped_comparison` — so they must
      not split the key space.

    Expression trees are digested per node (op, normalized value,
    sorted normalized label set, child digests), memoized by object
    identity within one call — short node serializations are embedded
    verbatim (they always contain a separator byte, so they cannot
    collide with a hex digest) and only larger ones are collapsed to a
    sha256; non-structural ``mem`` provenance labels are serialized
    explicitly, so structurally equal trees with different taint stay
    distinct.
    """
    pcs: Set[int] = set()
    for load in events.loads:
        if load.pc > 0:
            pcs.add(load.pc)
        for guard in load.guards:
            if guard.pc > 0 and unwrapped_comparison(guard.condition) is not None:
                pcs.add(guard.pc)
    for copy in events.copies:
        if copy.pc > 0:
            pcs.add(copy.pc)
        for guard in copy.guards:
            if guard.pc > 0 and unwrapped_comparison(guard.condition) is not None:
                pcs.add(guard.pc)
    pc_rank = {pc: rank for rank, pc in enumerate(sorted(pcs), start=1)}

    regions: Dict[int, int] = {}
    node_memo: Dict[int, str] = {}

    def _norm_pc(pc: int) -> int:
        return pc_rank[pc] if pc > 0 else pc

    def _norm_label(label: Label) -> str:
        kind, key = label
        if kind == "cdc":
            return f"cdc:{regions[key]}"
        if isinstance(key, Expr):
            return f"cd:e{node_memo.get(id(key), 'self')}"
        return f"cd:{key}"

    def _node_digest(root: Expr) -> str:
        cached = node_memo.get(id(root))
        if cached is not None:
            return cached
        stack = [root]
        while stack:
            node = stack[-1]
            if id(node) in node_memo:
                stack.pop()
                continue
            deps = [arg for arg in node.args if id(arg) not in node_memo]
            nested = [
                key
                for kind, key in node.labels
                if kind == "cd"
                and isinstance(key, Expr)
                and key is not node
                and id(key) not in node_memo
            ]
            if nested:
                # Sorted push order keeps the post-order (and with it
                # the region numbering below) independent of frozenset
                # iteration order, which varies with hash randomization.
                nested.sort(key=repr)
                deps.extend(nested)
            if deps:
                stack.extend(deps)
                continue
            stack.pop()
            # Region ids are numbered by first appearance in this
            # deterministic post-order walk (a single pass, fused with
            # serialization), in sorted raw-key order within one node.
            if node.op == "mem":
                regions.setdefault(node.val, len(regions))  # type: ignore[arg-type]
            copied = [key for kind, key in node.labels if kind == "cdc"]
            if copied:
                copied.sort()
                for rid in copied:
                    regions.setdefault(rid, len(regions))
            parts: List[str] = [node.op]
            if node.op == "const":
                parts.append(format(node.val, "x"))  # type: ignore[arg-type]
            elif node.op == "mem":
                parts.append(str(regions[node.val]))  # type: ignore[index]
            elif node.val is not None:
                parts.append(str(node.val))
            parts.extend(node_memo[id(arg)] for arg in node.args)
            parts.append(",".join(sorted(_norm_label(l) for l in node.labels)))
            payload = "\x1f".join(parts)
            if len(payload) <= 96:
                # Embed short serializations verbatim: they always
                # contain a \x1f separator, so they can never collide
                # with a 64-char hex digest, and skipping the hash
                # halves the digest cost on leaf-heavy trees.
                node_memo[id(node)] = payload
            else:
                node_memo[id(node)] = hashlib.sha256(
                    payload.encode("utf-8")
                ).hexdigest()
        return node_memo[id(root)]

    guard_memo: Dict[int, str] = {}

    def _guards_part(guards: Tuple[Guard, ...]) -> str:
        # Only the inference-visible view of a guard is digested: its
        # unwrapped lt/gt comparison and the comparison site.  Dispatch
        # ``eq`` checks (which embed the selector constant) and the
        # ``taken`` flag never reach a rule, so they must not split
        # the key space — dropping them is what lets clone fleets with
        # different selectors share one entry.
        out = []
        for guard in guards:
            part = guard_memo.get(id(guard))
            if part is None:
                cmp_expr = unwrapped_comparison(guard.condition)
                part = (
                    ""
                    if cmp_expr is None
                    else f"{_norm_pc(guard.pc)}:{_node_digest(cmp_expr)}"
                )
                guard_memo[id(guard)] = part
            if part:
                out.append(part)
        return ";".join(out)

    parts: List[str] = ["sigrec-events:v1"]
    for load in events.loads:
        parts.append(
            f"L{_norm_pc(load.pc)}:{_node_digest(load.loc)}:"
            f"{_node_digest(load.result)}:{_guards_part(load.guards)}"
        )
    for copy in events.copies:
        region = regions.setdefault(copy.region_id, len(regions))
        parts.append(
            f"C{_norm_pc(copy.pc)}:{_node_digest(copy.src)}:"
            f"{_node_digest(copy.length)}:{region}:"
            f"{_guards_part(copy.guards)}"
        )
    for use in events.uses:
        for rid in sorted(key for kind, key in use.labels if kind == "cdc"):
            regions.setdefault(rid, len(regions))
        for sub in sorted(
            (
                key
                for kind, key in use.labels
                if kind == "cd" and isinstance(key, Expr)
            ),
            key=repr,
        ):
            _node_digest(sub)
        labels = ",".join(sorted(_norm_label(l) for l in use.labels))
        parts.append(f"U{use.kind}:{use.operand}:{labels}")
    parts.append(f"V{1 if events.vyper_markers > 0 else 0}")
    return hashlib.sha256("\x1e".join(parts).encode("utf-8")).hexdigest()
