"""Events recorded by the TASE engine.

The rules (R1-R31) are predicates over the set of events one function
body produced: how the call data was read (CALLDATALOAD/CALLDATACOPY,
with which location expressions and under which branch guards) and how
parameter-tainted values were used afterwards (masks, sign extensions,
comparisons, byte extraction, arithmetic).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple

from repro.sigrec.expr import Expr, Label


@dataclass(frozen=True)
class Guard:
    """One branch condition active when an event fired.

    ``pc`` is the program counter of the JUMPI that consumed the
    condition — distinct loop *levels* have distinct pcs even though a
    concrete loop contributes one guard per unrolled iteration.
    """

    condition: Expr
    taken: bool
    pc: int = -1


@dataclass(frozen=True)
class CalldataLoadEvent:
    """CALLDATALOAD(loc) -> result, under ``guards``."""

    pc: int
    loc: Expr
    result: Expr
    guards: Tuple[Guard, ...] = ()


@dataclass(frozen=True)
class CalldataCopyEvent:
    """CALLDATACOPY(dst, src, length), under ``guards``."""

    pc: int
    dst: Expr
    src: Expr
    length: Expr
    region_id: int = -1
    guards: Tuple[Guard, ...] = ()


@dataclass(frozen=True)
class UseEvent:
    """A parameter-tainted value flowed into a type-revealing operation.

    ``kind`` is one of:

    ============  =====================================================
    and_mask      AND with a constant mask (``operand`` = the mask)
    signextend    SIGNEXTEND k (``operand`` = k)
    bool_mask     two consecutive ISZEROs
    byte          BYTE extraction of a single byte
    signed_op     SDIV/SMOD/SLT/SGT/SAR
    arith         unsigned arithmetic (ADD/SUB/MUL/DIV/MOD/EXP)
    lt_bound      LT against a constant (Vyper range check, upper)
    gt_bound      GT/SGT style lower-bound comparison against a constant
    mstore8       single-byte memory write of a tainted value
    ============  =====================================================
    """

    pc: int
    kind: str
    labels: FrozenSet[Label]
    operand: Optional[int] = None


@dataclass
class FunctionEvents:
    """Everything TASE observed while executing one function body."""

    selector: int
    loads: list = field(default_factory=list)  # CalldataLoadEvent
    copies: list = field(default_factory=list)  # CalldataCopyEvent
    uses: list = field(default_factory=list)  # UseEvent
    hit_path_limit: bool = False
    vyper_markers: int = 0  # range-check pattern sightings (R20)

    def add_load(self, event: CalldataLoadEvent) -> None:
        if event not in self._load_set:
            self._load_set.add(event)
            self.loads.append(event)

    def add_copy(self, event: CalldataCopyEvent) -> None:
        key = (event.pc, event.dst, event.src, event.length, event.guards)
        if key not in self._copy_set:
            self._copy_set.add(key)
            self.copies.append(event)

    def add_use(self, event: UseEvent) -> None:
        if event not in self._use_set:
            self._use_set.add(event)
            self.uses.append(event)

    def __post_init__(self) -> None:
        self._load_set = set()
        self._copy_set = set()
        self._use_set = set()
