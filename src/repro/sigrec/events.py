"""Events recorded by the TASE engine.

The rules (R1-R31) are predicates over the set of events one function
body produced: how the call data was read (CALLDATALOAD/CALLDATACOPY,
with which location expressions and under which branch guards) and how
parameter-tainted values were used afterwards (masks, sign extensions,
comparisons, byte extraction, arithmetic).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple

from repro.sigrec.expr import Expr, Label


class Guard:
    """One branch condition active when an event fired.

    ``pc`` is the program counter of the JUMPI that consumed the
    condition — distinct loop *levels* have distinct pcs even though a
    concrete loop contributes one guard per unrolled iteration.

    A plain slotted record rather than a dataclass: guard tuples are
    re-hashed on every event-deduplication probe, so the hash is
    computed once at construction and cached.  Treat instances as
    immutable.
    """

    __slots__ = ("condition", "taken", "pc", "_hash")

    def __init__(self, condition: Expr, taken: bool, pc: int = -1) -> None:
        self.condition = condition
        self.taken = taken
        self.pc = pc
        self._hash = hash((condition, taken, pc))

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Guard):
            return NotImplemented
        return (
            self._hash == other._hash
            and self.taken == other.taken
            and self.pc == other.pc
            and self.condition == other.condition
        )

    def __repr__(self) -> str:
        return (
            f"Guard(condition={self.condition!r}, "
            f"taken={self.taken!r}, pc={self.pc!r})"
        )


class CalldataLoadEvent:
    """CALLDATALOAD(loc) -> result, under ``guards``.

    A plain slotted record rather than a frozen dataclass: load events
    are deduplicated through a set, and a dataclass re-hashes its full
    field tuple — including the whole guard chain — on every probe.
    The hash is computed once at construction instead.  Treat
    instances as immutable.
    """

    __slots__ = ("pc", "loc", "result", "guards", "_hash")

    def __init__(
        self,
        pc: int,
        loc: Expr,
        result: Expr,
        guards: Tuple[Guard, ...] = (),
    ) -> None:
        self.pc = pc
        self.loc = loc
        self.result = result
        self.guards = guards
        self._hash = hash((pc, loc, result, guards))

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, CalldataLoadEvent):
            return NotImplemented
        return (
            self._hash == other._hash
            and self.pc == other.pc
            and self.loc == other.loc
            and self.result == other.result
            and self.guards == other.guards
        )

    def __repr__(self) -> str:
        return (
            f"CalldataLoadEvent(pc={self.pc!r}, loc={self.loc!r}, "
            f"result={self.result!r}, guards={self.guards!r})"
        )


@dataclass(frozen=True)
class CalldataCopyEvent:
    """CALLDATACOPY(dst, src, length), under ``guards``."""

    pc: int
    dst: Expr
    src: Expr
    length: Expr
    region_id: int = -1
    guards: Tuple[Guard, ...] = ()


class UseEvent:
    """A parameter-tainted value flowed into a type-revealing operation.

    Slotted with an eager cached hash for the same reason as
    :class:`CalldataLoadEvent`: use events are deduplicated through a
    set on every record.  Treat instances as immutable.

    ``kind`` is one of:

    ============  =====================================================
    and_mask      AND with a constant mask (``operand`` = the mask)
    signextend    SIGNEXTEND k (``operand`` = k)
    bool_mask     two consecutive ISZEROs
    byte          BYTE extraction of a single byte
    signed_op     SDIV/SMOD/SLT/SGT/SAR
    arith         unsigned arithmetic (ADD/SUB/MUL/DIV/MOD/EXP)
    lt_bound      LT against a constant (Vyper range check, upper)
    gt_bound      GT/SGT style lower-bound comparison against a constant
    mstore8       single-byte memory write of a tainted value
    ============  =====================================================
    """

    __slots__ = ("pc", "kind", "labels", "operand", "_hash")

    def __init__(
        self,
        pc: int,
        kind: str,
        labels: FrozenSet[Label],
        operand: Optional[int] = None,
    ) -> None:
        self.pc = pc
        self.kind = kind
        self.labels = labels
        self.operand = operand
        self._hash = hash((pc, kind, labels, operand))

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, UseEvent):
            return NotImplemented
        return (
            self._hash == other._hash
            and self.pc == other.pc
            and self.kind == other.kind
            and self.operand == other.operand
            and self.labels == other.labels
        )

    def __repr__(self) -> str:
        return (
            f"UseEvent(pc={self.pc!r}, kind={self.kind!r}, "
            f"labels={self.labels!r}, operand={self.operand!r})"
        )


@dataclass
class FunctionEvents:
    """Everything TASE observed while executing one function body."""

    selector: int
    loads: list = field(default_factory=list)  # CalldataLoadEvent
    copies: list = field(default_factory=list)  # CalldataCopyEvent
    uses: list = field(default_factory=list)  # UseEvent
    hit_path_limit: bool = False
    vyper_markers: int = 0  # range-check pattern sightings (R20)

    def add_load(self, event: CalldataLoadEvent) -> None:
        if event not in self._load_set:
            self._load_set.add(event)
            self.loads.append(event)

    def add_copy(self, event: CalldataCopyEvent) -> None:
        key = (event.pc, event.dst, event.src, event.length, event.guards)
        if key not in self._copy_set:
            self._copy_set.add(key)
            self.copies.append(event)

    def add_use(self, event: UseEvent) -> None:
        if event not in self._use_set:
            self._use_set.add(event)
            self.uses.append(event)

    def __post_init__(self) -> None:
        self._load_set = set()
        self._copy_set = set()
        self._use_set = set()
