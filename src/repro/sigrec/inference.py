"""TASE type inference: from recorded events to a parameter type list.

Implements the paper's four steps (§4.2):

1. **Coarse-grained type inference** — cluster the call-data accesses of
   one function into parameters and decide each parameter's *family*
   (basic / static array / dynamic array / bytes-string / struct /
   nested array; Vyper list / bounded bytes / bounded string) using
   rules R1-R10 and R19-R25.
2. **Number and order of parameters** — one cluster per parameter,
   ordered by head position in the call data.
3. **Parameter-related symbols** — the engine already labels every
   loaded value with its call-data sources; here those sources are
   assigned to clusters, connecting later *uses* to parameters.
4. **Fine-grained type inference** — refine basic types and item types
   with rules R11-R18 and R26-R31 (masks, sign extension, double
   ISZERO, BYTE, signed ops, Vyper range clamps).

Inference is deterministic in its inputs: the same ``FunctionEvents``
and engine options always yield the same parameter list and the same
rule firings.  The function-body memo (``sigrec.cache.FunctionMemo``)
leans on this — callers may run inference against a throwaway
:class:`RuleTracker`, persist the resulting counts alongside the
signature, and later replay them into a live tracker instead of
re-inferring.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.sigrec import expr as E
from repro.sigrec import rules as R
from repro.sigrec.events import (
    CalldataCopyEvent,
    CalldataLoadEvent,
    FunctionEvents,
    Guard,
    UseEvent,
    unwrapped_comparison,
)
from repro.sigrec.rules import RuleTracker


@dataclass
class InferredFunction:
    """The recovered parameter list of one function body."""

    selector: int
    param_types: List[str]
    language: str  # "solidity" | "vyper"
    fired_rules: List[str] = field(default_factory=list)
    # Per-parameter confidence: "high" (structure and usage corroborate),
    # "medium" (one strong hint) or "low" (a default stood in: R4's bare
    # uint256, or the bytes-vs-string tie-break with no byte access).
    confidences: List[str] = field(default_factory=list)

    @property
    def selector_hex(self) -> str:
        return f"0x{self.selector:08x}"

    def param_list(self) -> str:
        return ",".join(self.param_types)


class _Cluster:
    """One parameter candidate: all accesses sharing a call-data base.

    A plain slotted record (one instance per recovered parameter, but
    thousands of parameters per batch): ``labels`` covers every access
    of the parameter; ``item_labels`` covers only the parameter's
    *data* (array items, blob bytes) — excluding the offset and num
    fields, whose incidental arithmetic must not influence item-type
    refinement.  ``_suffix`` carries the array-dimension suffix from
    coarse classification to item refinement (``None`` for
    non-array families).
    """

    __slots__ = ("position", "family", "type_str", "labels", "item_labels",
                 "_suffix")

    def __init__(
        self,
        position: int,  # head offset in the call data (>= 4)
        family: str,  # "basic" | "static" | "dynamic" | "blob" | ...
        type_str: str = "uint256",
    ) -> None:
        self.position = position
        self.family = family
        self.type_str = type_str
        self.labels: Set[Tuple[str, object]] = set()
        self.item_labels: Set[Tuple[str, object]] = set()
        self._suffix: Optional[str] = None


def _dims_suffix(dims) -> str:
    """Render dimension sizes as an array-type suffix: ``[2][8]``."""
    return "".join(f"[{d}]" for d in dims)


def _cd_key(loc: E.Expr) -> object:
    """The label key :meth:`repro.sigrec.expr.ExprArena.calldata` uses.

    Constant offsets label as the offset int; symbolic locations label
    as the location expression itself (structural equality — the same
    sharing the old ``repr(loc)`` string key gave, without the repr).
    """
    return loc.value if loc.is_const else loc


# The one definition of "what inference can see of a guard" is shared
# with the inference-memo event digest — see events.unwrapped_comparison.
_unwrap_cmp = unwrapped_comparison


def _guard_levels(guards: Sequence[Guard]) -> List[Tuple[int, E.Expr]]:
    """Distinct bound-check levels (by comparison site) in guard order."""
    seen: Set[int] = set()
    levels: List[Tuple[int, E.Expr]] = []
    for guard in guards:
        cmp_expr = _unwrap_cmp(guard.condition)
        if cmp_expr is None or guard.pc in seen:
            continue
        seen.add(guard.pc)
        levels.append((guard.pc, cmp_expr))
    return levels


def _has_stride_mul(loc: E.Expr) -> bool:
    """Does the location scale an index by a 32-byte stride?

    Covers both the plain ``MUL 32k`` form and the obfuscated
    ``SHL >=5`` form (a left shift by five is a multiplication by 32).
    """
    for node in loc.iter_nodes():
        if node.op == "mul":
            for arg in node.args:
                if arg.is_const and arg.value % 32 == 0 and arg.value > 0:
                    return True
        if node.op == "shl" and node.args and node.args[0].is_const:
            if node.args[0].value >= 5:
                return True
    return False


def _bound_view(cmp_expr: E.Expr):
    """Uniform (index, bound) view of a bound check.

    ``lt(i, bound)`` and the inverted ``gt(bound, i)`` express the same
    check; normalizing here makes the rules obfuscation-resistant.
    """
    if cmp_expr.op == "lt":
        return cmp_expr.args[0], cmp_expr.args[1]
    if cmp_expr.op == "gt":
        return cmp_expr.args[1], cmp_expr.args[0]
    return None


def _bound_view_strict(cmp_expr: E.Expr):
    """LT-only bound view: the pre-generalization (ablation) variant."""
    if cmp_expr.op == "lt":
        return cmp_expr.args[0], cmp_expr.args[1]
    return None


def _has_stride_mul_strict(loc: E.Expr) -> bool:
    """MUL-only stride detection: the pre-generalization variant."""
    for node in loc.iter_nodes():
        if node.op == "mul":
            for arg in node.args:
                if arg.is_const and arg.value % 32 == 0 and arg.value > 0:
                    return True
    return False


def _has_calldatasize(node: E.Expr) -> bool:
    """Does the expression mention CALLDATASIZE anywhere?"""
    return any(n.op == "calldatasize" for n in node.iter_nodes())


class PredicateMemo:
    """Per-engine-run memo for structural expression predicates.

    All memoized predicates are pure functions of node structure, so
    one memo can safely outlive a single :class:`TypeInference` and be
    shared across every function of one ``recover()`` call — interned
    nodes (the PR 6 arena) are classified once per run, not once per
    rule probe.  Keys are the expression nodes themselves: their
    structural hash is computed once and cached, so a probe costs one
    dict lookup even across functions that rebuilt equal trees.

    The semantic-idiom and strict (ablation) predicate variants keep
    separate tables, so a run that mixes modes (``explain``, ablation
    benchmarks) cannot cross-contaminate.
    """

    __slots__ = ("stride", "stride_strict", "bound_view", "bound_view_strict",
                 "unwrap", "has_cds", "guard_levels", "cd_key")

    def __init__(self) -> None:
        self.stride: Dict[E.Expr, bool] = {}
        self.stride_strict: Dict[E.Expr, bool] = {}
        self.bound_view: Dict[E.Expr, object] = {}
        self.bound_view_strict: Dict[E.Expr, object] = {}
        self.unwrap: Dict[E.Expr, Optional[E.Expr]] = {}
        self.has_cds: Dict[E.Expr, bool] = {}
        self.guard_levels: Dict[Tuple[Guard, ...], List[Tuple[int, E.Expr]]] = {}
        self.cd_key: Dict[E.Expr, object] = {}


def _memoized(cache: Dict, fn):
    """Wrap a pure single-argument predicate with a dict memo."""

    def probe(node):
        try:
            return cache[node]
        except KeyError:
            result = fn(node)
            cache[node] = result
            return result

    return probe


class TypeInference:
    """Runs steps 1-4 for one function's events.

    Two execution paths produce byte-identical results:

    * ``indexed=True`` (default) — ``__init__`` builds the load/copy
      **derivation graph** (which loads' results feed which other
      accesses' location expressions) and a **label inverted index**
      over use events once, and memoizes structural predicates in a
      :class:`PredicateMemo`; every rule probe is then an index lookup.
    * ``indexed=False`` — the retained reference path: the original
      quadratic rescans, kept verbatim as the differential-testing
      oracle (``tests/sigrec/test_inference_equivalence.py``).
    """

    def __init__(
        self,
        events: FunctionEvents,
        tracker: RuleTracker,
        semantic_idioms: bool = True,
        coarse_only: bool = False,
        memo: Optional[PredicateMemo] = None,
        indexed: bool = True,
    ) -> None:
        self.events = events
        self.tracker = tracker
        self.fired: List[str] = []
        self.is_vyper = events.vyper_markers > 0
        self.coarse_only = coarse_only
        self._indexed = indexed
        self._loads = list(events.loads)
        self._copies = list(events.copies)
        self._uses = list(events.uses)
        stride_raw = _has_stride_mul if semantic_idioms else _has_stride_mul_strict
        bound_raw = _bound_view if semantic_idioms else _bound_view_strict
        if indexed:
            self._memo = memo if memo is not None else PredicateMemo()
            self._stride_test = _memoized(
                self._memo.stride if semantic_idioms
                else self._memo.stride_strict,
                stride_raw,
            )
            self._bound_view = _memoized(
                self._memo.bound_view if semantic_idioms
                else self._memo.bound_view_strict,
                bound_raw,
            )
            self._unwrap = _memoized(self._memo.unwrap, _unwrap_cmp)
            self._has_cds = _memoized(self._memo.has_cds, _has_calldatasize)
            self._cd_key = _memoized(self._memo.cd_key, _cd_key)
            self._build_indexes()
        else:
            self._memo = None
            self._stride_test = stride_raw
            self._bound_view = bound_raw
            self._unwrap = _unwrap_cmp
            self._has_cds = _has_calldatasize
            self._cd_key = _cd_key
        self._bound_rights: Optional[Set[E.Expr]] = None

    def _build_indexes(self) -> None:
        """One pass over the events; every later probe is a lookup.

        ``_deriving_loads[i]`` / ``_deriving_copies[i]`` list, in event
        order, the loads (copies) whose location (source or length)
        structurally contains load *i*'s result — the derivation edges
        the reference path rediscovers with a containment rescan per
        probe.  Lists are keyed by load index; loads with structurally
        equal results share entries exactly as the structural rescans
        would find them.
        """
        loads = self._loads
        result_to_idxs: Dict[E.Expr, List[int]] = {}
        for i, load in enumerate(loads):
            result_to_idxs.setdefault(load.result, []).append(i)
        deriving_loads: List[List[int]] = [[] for _ in loads]
        for j, load in enumerate(loads):
            for node in load.loc.node_set():
                idxs = result_to_idxs.get(node)
                if idxs:
                    for i in idxs:
                        if i != j:
                            deriving_loads[i].append(j)
        deriving_copies: List[List[int]] = [[] for _ in loads]
        for k, copy in enumerate(self._copies):
            nodes = copy.src.node_set() | copy.length.node_set()
            for node in nodes:
                idxs = result_to_idxs.get(node)
                if idxs:
                    for i in idxs:
                        deriving_copies[i].append(k)
        self._deriving_loads = deriving_loads
        self._deriving_copies = deriving_copies
        self._load_index = {id(load): i for i, load in enumerate(loads)}
        uses_by_label: Dict[Tuple[str, object], List[int]] = {}
        for u, use in enumerate(self._uses):
            for label in use.labels:
                uses_by_label.setdefault(label, []).append(u)
        self._uses_by_label = uses_by_label

    # -- derivation queries (index lookup vs. reference rescan) ---------

    def _loads_deriving(self, idx: int) -> List[int]:
        """Indexes of loads whose loc contains load ``idx``'s result."""
        if self._indexed:
            return self._deriving_loads[idx]
        base = self._loads[idx].result
        return [
            j
            for j, other in enumerate(self._loads)
            if j != idx and other.loc.contains(base)
        ]

    def _copies_deriving(self, idx: int) -> List[int]:
        """Indexes of copies whose src/length contain load ``idx``'s result."""
        if self._indexed:
            return self._deriving_copies[idx]
        base = self._loads[idx].result
        return [
            k
            for k, copy in enumerate(self._copies)
            if copy.src.contains(base) or copy.length.contains(base)
        ]

    def _has_dependents(self, load: CalldataLoadEvent) -> bool:
        """Does any *other* load's loc contain this load's result?"""
        if self._indexed:
            return bool(self._deriving_loads[self._load_index[id(load)]])
        return any(
            other.loc.contains(load.result)
            for other in self._loads
            if other is not load
        )

    def _dependents_of(self, load: CalldataLoadEvent) -> List[int]:
        if self._indexed:
            return self._deriving_loads[self._load_index[id(load)]]
        return [
            j
            for j, other in enumerate(self._loads)
            if other is not load and other.loc.contains(load.result)
        ]

    # ------------------------------------------------------------------

    def _fire(self, rule_id: str) -> None:
        self.tracker.fire(rule_id)
        self.fired.append(rule_id)

    def run(self) -> InferredFunction:
        if self.is_vyper:
            self._fire("R20")

        clusters: List[_Cluster] = []
        consumed_loads: Set[int] = set()  # indexes into self._loads
        consumed_copies: Set[int] = set()

        head_loads = self._head_loads()
        offset_heads = self._offset_heads(head_loads)

        # --- dynamic parameters (offset field present) ------------------
        for loc_value, load_idx in offset_heads:
            cluster = self._classify_dynamic(loc_value, load_idx, consumed_loads,
                                             consumed_copies)
            if cluster is not None:
                clusters.append(cluster)

        # --- static arrays, public mode (constant-source copies) --------
        clusters.extend(self._static_public_arrays(consumed_copies))

        # --- static arrays, external mode (bound-checked item reads) ----
        clusters.extend(self._static_external_arrays(consumed_loads))

        # --- basic types (plain head reads) ------------------------------
        for loc_value, load_idx in head_loads:
            if load_idx in consumed_loads:
                continue
            consumed_loads.add(load_idx)
            cluster = _Cluster(position=loc_value, family="basic")
            cluster.labels.add(("cd", loc_value))
            clusters.append(cluster)
            self._fire("R25" if self.is_vyper else "R4")

        # --- step 2: order; step 4: refine -------------------------------
        clusters.sort(key=lambda c: c.position)
        if not self.coarse_only:
            for cluster in clusters:
                if cluster.family == "basic":
                    cluster.type_str = self._refine_basic(cluster)
                elif cluster.family in ("static", "dynamic"):
                    cluster.type_str = self._refine_array_items(cluster)

        return InferredFunction(
            selector=self.events.selector,
            param_types=[c.type_str for c in clusters],
            language="vyper" if self.is_vyper else "solidity",
            fired_rules=self.fired,
            confidences=[self._confidence(c) for c in clusters],
        )

    def _confidence(self, cluster: _Cluster) -> str:
        """Evidence-based confidence for one parameter.

        * structural families (arrays, structs, copies) carry layout
          evidence; a refined item/basic type adds usage evidence;
        * a basic parameter refined by a usage rule is solid on its own;
        * the defaults — R4's uint256 with no uses at all, or a blob
          typed ``string`` purely because no byte access was seen — are
          exactly the paper's case-5 shadows, and score low.
        """
        labels = cluster.item_labels or cluster.labels
        if self._indexed:
            has_use = any(label in self._uses_by_label for label in labels)
        else:
            has_use = any(use.labels & labels for use in self._uses)
        if cluster.family in ("static", "struct"):
            return "high" if has_use else "medium"
        if cluster.family == "dynamic":
            return "high" if has_use else "medium"
        if cluster.family == "blob":
            if cluster.type_str == "bytes":
                return "high"  # byte access positively identified it
            return "medium" if has_use else "low"  # string by default
        # basic
        if cluster.type_str != "uint256":
            return "high"  # a refinement rule fired
        return "medium" if has_use else "low"

    # ------------------------------------------------------------------
    # Step 1 helpers
    # ------------------------------------------------------------------

    def _head_loads(self) -> List[Tuple[int, int]]:
        """Constant-location, head-aligned loads: (location, load index)."""
        heads = []
        seen_locs: Set[int] = set()
        for idx, load in enumerate(self._loads):
            if not load.loc.is_const:
                continue
            loc = load.loc.value
            if loc < 4 or (loc - 4) % 32 != 0 or loc in seen_locs:
                continue
            seen_locs.add(loc)
            heads.append((loc, idx))
        return sorted(heads)

    def _offset_heads(self, head_loads: List[Tuple[int, int]]) -> List[Tuple[int, int]]:
        """Head loads whose result feeds another call-data access (R1)."""
        result = []
        for loc_value, idx in head_loads:
            if self._loads_deriving(idx) or self._copies_deriving(idx):
                result.append((loc_value, idx))
        return result

    # ------------------------------------------------------------------

    def _classify_dynamic(
        self,
        loc_value: int,
        load_idx: int,
        consumed_loads: Set[int],
        consumed_copies: Set[int],
    ) -> Optional[_Cluster]:
        """Classify one offset-rooted parameter (R1 and descendants)."""
        base = self._loads[load_idx].result  # the offset field value
        consumed_loads.add(load_idx)
        cluster = _Cluster(position=loc_value, family="dynamic")
        cluster.labels.add(("cd", loc_value))

        num_expr = E.calldata(E.binop("add", E.const(4), base))
        num_idx = None
        derived_loads: List[int] = []
        for j in self._loads_deriving(load_idx):
            load = self._loads[j]
            derived_loads.append(j)
            consumed_loads.add(j)
            key = ("cd", self._cd_key(load.loc))
            cluster.labels.add(key)
            if load.result == num_expr:
                num_idx = j
            else:
                cluster.item_labels.add(key)
        derived_copies: List[int] = []
        for k in self._copies_deriving(load_idx):
            copy = self._copies[k]
            derived_copies.append(k)
            consumed_copies.add(k)
            cluster.labels.add(("cdc", copy.region_id))
            cluster.item_labels.add(("cdc", copy.region_id))

        self._fire("R1")

        own_pcs = {self._loads[load_idx].pc}
        own_pcs.update(self._loads[j].pc for j in derived_loads)
        own_pcs.update(self._copies[k].pc for k in derived_copies)

        if derived_copies:
            return self._classify_dynamic_public(
                cluster, base, num_expr, derived_copies, own_pcs
            )
        return self._classify_dynamic_external(
            cluster, base, num_expr, num_idx, derived_loads, own_pcs
        )

    # -- public mode (CALLDATACOPY) -------------------------------------

    def _classify_dynamic_public(
        self,
        cluster: _Cluster,
        base: E.Expr,
        num_expr: E.Expr,
        copy_indexes: List[int],
        own_pcs: Set[int],
    ) -> _Cluster:
        copies = [self._copies[k] for k in copy_indexes]
        copy_pcs = {c.pc for c in copies}
        first = copies[0]

        # Vyper R23: one copy of the num field *plus* the capped payload
        # (source = offset + 4, i.e. including the num word) of constant
        # length 32 + maxLen.
        src_is_num_field = first.src == E.binop("add", E.const(4), base)
        if src_is_num_field and first.length.is_const and len(copy_pcs) == 1:
            # The cap itself (length - 32) is not part of the canonical
            # ABI type, so only bytes-vs-string needs deciding (R26).
            self._fire("R23")
            if self._has_use_kind(cluster, ("byte", "mstore8")):
                self._fire("R26")
                cluster.family = "blob"
                cluster.type_str = "bytes"
            else:
                cluster.family = "blob"
                cluster.type_str = "string"
            return cluster

        if len(copy_pcs) == 1:
            self._fire("R5")

        length = first.length
        # R8: bytes/string — the copy length rounds num up to 32 bytes.
        if self._is_rounded_length(length, num_expr):
            self._fire("R8")
            cluster.family = "blob"
            if self._has_use_kind(cluster, ("byte", "mstore8")):
                self._fire("R17")
                cluster.type_str = "bytes"
            else:
                cluster.type_str = "string"
            return cluster

        # R7/R10: dynamic arrays — row length is a multiple of 32.  A
        # *constant* copy length means per-row copies in a loop, i.e. a
        # multidimensional array (a one-dimensional one is copied in a
        # single CALLDATACOPY of num*32 bytes), so the row width is an
        # inner dimension even when it is 1.
        inner_dims: List[int] = []
        if length.is_const:
            inner_dims.append(max(1, length.value // 32))
        concrete_bounds = self._concrete_guard_bounds(
            first.guards, first.pc, own_pcs, num_expr=num_expr
        )
        if len(copy_pcs) == 1 and not concrete_bounds and length.is_const is False:
            self._fire("R7")
        else:
            self._fire("R10" if (concrete_bounds or inner_dims) else "R7")
        suffix = _dims_suffix(inner_dims) + _dims_suffix(reversed(concrete_bounds))
        cluster.family = "dynamic"
        cluster.type_str = "uint256" + suffix + "[]"
        cluster._suffix = suffix + "[]"
        return cluster

    # -- external mode (CALLDATALOAD on demand) --------------------------

    def _classify_dynamic_external(
        self,
        cluster: _Cluster,
        base: E.Expr,
        num_expr: E.Expr,
        num_idx: Optional[int],
        derived_loads: List[int],
        own_pcs: Set[int],
    ) -> _Cluster:
        item_loads = [
            self._loads[j]
            for j in derived_loads
            if num_idx is None or j != num_idx
        ]
        # The read at offset+4 is a num field for arrays but the first
        # *component* of a dynamic struct — struct classification must
        # see it again.
        num_load = self._loads[num_idx] if num_idx is not None else None

        # Inner offset fields: a derived load whose own result is the base
        # of yet another load -> nested array or struct component (R19/R22).
        # The num-field candidate participates: for a struct whose first
        # component is a dynamic array, the read at offset+4 is that
        # component's own offset field, not a num field.
        inner_offsets = []
        for load in item_loads + ([num_load] if num_load is not None else []):
            if self._has_dependents(load):
                inner_offsets.append(load)

        strided = [l for l in item_loads if self._stride_test(l.loc)]
        plain_slot = [
            l
            for l in item_loads
            if not self._stride_test(l.loc)
            and l.loc.op == "add"
            and l.loc.args[0].is_const
            and l.loc.args[1] == base
        ]
        raw_term = [
            l for l in item_loads if not self._stride_test(l.loc) and l not in plain_slot
        ]

        # The num value bounds a loop iff some guard compares an index
        # *against exactly it* — an inner array's num merely containing
        # it (through the offset chain) means a struct component.
        num_used_as_bound = self._is_bound_right(num_expr)

        struct_loads = item_loads + ([num_load] if num_load is not None else [])

        if inner_offsets:
            return self._classify_nested_or_struct(
                cluster, base, num_expr, num_idx, inner_offsets, struct_loads,
                num_used_as_bound,
            )

        if plain_slot and not strided and not num_used_as_bound and num_idx is None:
            # Component reads at fixed slots with no num field: struct (R21).
            return self._classify_struct(cluster, base, plain_slot)

        if strided:
            # R2: n-dimensional dynamic array in an external function.
            self._fire("R2")
            sample = strided[0]
            const_dims = self._concrete_guard_bounds(
                sample.guards, sample.pc, own_pcs, loc=sample.loc,
                num_expr=num_expr,
            )
            cluster.family = "dynamic"
            suffix = _dims_suffix(reversed(const_dims)) + "[]"
            cluster.type_str = "uint256" + suffix
            cluster._suffix = suffix
            return cluster

        if raw_term:
            # Byte-granular access without 32-byte strides: bytes/string.
            cluster.family = "blob"
            if self._has_use_kind(cluster, ("byte", "mstore8")):
                self._fire("R17")
                cluster.type_str = "bytes"
            else:
                cluster.type_str = "string"
            return cluster

        if plain_slot and num_used_as_bound:
            # Constant-index item reads of a 1-dim dynamic array.
            self._fire("R2")
            cluster.family = "dynamic"
            cluster.type_str = "uint256[]"
            cluster._suffix = "[]"
            return cluster

        # Only the num field was read: a dynamic value whose items were
        # never accessed.  Without byte access hints this defaults to
        # string (R1 alone cannot discriminate -- paper case 5).
        cluster.family = "blob"
        cluster.type_str = "string"
        return cluster

    def _classify_nested_or_struct(
        self,
        cluster: _Cluster,
        base: E.Expr,
        num_expr: E.Expr,
        num_idx: Optional[int],
        inner_offsets: List[CalldataLoadEvent],
        item_loads: List[CalldataLoadEvent],
        num_used_as_bound: bool,
    ) -> _Cluster:
        """Offset chains below a parameter: nested array and/or struct."""
        # Distinguish: a nested array's top level has a num field that
        # bounds a loop; a dynamic struct's components sit at fixed slots.
        # Inner offset and num fields must not pollute item refinement.
        for load in inner_offsets:
            cluster.item_labels.discard(("cd", self._cd_key(load.loc)))
        if num_idx is not None and num_used_as_bound:
            # Nested array (R22): depth = offset levels + 1.
            self._fire("R22")
            depth = 1 + self._offset_chain_depth(inner_offsets)
            static_dims = self._static_dims_below(inner_offsets, num_expr)
            cluster.family = "dynamic"
            suffix = _dims_suffix(static_dims) + "[]" * depth
            cluster.type_str = "uint256" + suffix
            cluster._suffix = suffix
            return cluster
        # Struct containing dynamic components (R21; R19 when a component
        # is itself a nested array).
        has_deep_chain = self._offset_chain_depth(inner_offsets) >= 2
        self._fire("R19" if has_deep_chain else "R21")
        components = self._struct_components(base, item_loads, inner_offsets)
        cluster.family = "struct"
        cluster.type_str = "(" + ",".join(components) + ")"
        return cluster

    def _classify_struct(
        self, cluster: _Cluster, base: E.Expr, slot_loads: List[CalldataLoadEvent]
    ) -> _Cluster:
        self._fire("R21")
        components = self._struct_components(base, slot_loads, [])
        cluster.family = "struct"
        cluster.type_str = "(" + ",".join(components) + ")"
        return cluster

    def _struct_components(
        self,
        base: E.Expr,
        item_loads: List[CalldataLoadEvent],
        inner_offsets: List[CalldataLoadEvent],
    ) -> List[str]:
        """Best-effort component list of a dynamic struct."""
        slots: Dict[int, List[CalldataLoadEvent]] = {}
        for load in item_loads:
            if (
                load.loc.op == "add"
                and load.loc.args[0].is_const
                and load.loc.args[1] == base
            ):
                slot = (load.loc.args[0].value - 4) // 32
                slots.setdefault(slot, []).append(load)
        if not slots:
            return ["uint256"]
        components: List[str] = []
        inner_set = {id(l) for l in inner_offsets}
        for slot in sorted(slots):
            loads = slots[slot]
            if any(id(l) in inner_set for l in loads):
                # Component behind its own offset field: a dynamic
                # component; default to uint256[] (deep refinement of
                # struct internals is the paper's weak spot too).
                inner = loads[0]
                deref_locs = [self._loads[j] for j in self._dependents_of(inner)]
                strided_derefs = [d for d in deref_locs if self._stride_test(d.loc)]
                if strided_derefs:
                    # Depth: a component whose dereferences are again
                    # offset fields is a nested array inside the struct.
                    depth = max(1, self._offset_chain_depth([inner]) )
                    leaf_keys = {
                        ("cd", self._cd_key(d.loc))
                        for d in strided_derefs
                        if not self._has_dependents(d)
                    }
                    item = self._refine_labelled_basic(
                        leaf_keys
                        or {("cd", self._cd_key(d.loc)) for d in strided_derefs}
                    )
                    components.append(item + "[]" * depth)
                elif any(not d.loc.is_const for d in deref_locs):
                    components.append("bytes")
                else:
                    components.append("uint256[]")
            else:
                refined = self._refine_labelled_basic(
                    {("cd", self._cd_key(loads[0].loc))}
                )
                components.append(refined)
        return components

    def _offset_chain_depth(self, inner_offsets: List[CalldataLoadEvent]) -> int:
        """Longest chain of offset-field dereferences below a parameter."""
        depth = 1
        current = list(inner_offsets)
        for _ in range(4):  # bounded: arrays deeper than 5 are unseen
            next_level = []
            for load in current:
                for j in self._dependents_of(load):
                    if self._has_dependents(self._loads[j]):
                        next_level.append(self._loads[j])
            if not next_level:
                break
            depth += 1
            current = next_level
        return depth

    def _static_dims_below(
        self, inner_offsets: List[CalldataLoadEvent], num_expr: E.Expr
    ) -> List[int]:
        dims = []
        for load in inner_offsets:
            for bound in self._concrete_guard_bounds(
                load.guards, load.pc, {load.pc}, loc=load.loc
            ):
                dims.append(bound)
        return sorted(set(dims))

    # -- static arrays ----------------------------------------------------

    def _static_public_arrays(self, consumed_copies: Set[int]) -> List[_Cluster]:
        """R6/R9: constant-source CALLDATACOPYs in a public function."""
        groups: Dict[int, List[CalldataCopyEvent]] = {}
        for k, copy in enumerate(self._copies):
            if k in consumed_copies:
                continue
            if not copy.src.is_const or not copy.length.is_const:
                continue
            consumed_copies.add(k)
            groups.setdefault(copy.pc, []).append(copy)
        clusters = []
        for pc, copies in groups.items():
            srcs = sorted({c.src.value for c in copies})
            row_len = copies[0].length.value
            inner_dim = max(1, row_len // 32)
            concrete_bounds = self._concrete_guard_bounds(
                copies[0].guards, copies[0].pc, {pc}
            )
            if concrete_bounds:
                self._fire("R9")
            else:
                self._fire("R6")
            cluster = _Cluster(position=srcs[0], family="static")
            cluster.labels.add(("cdc", pc))
            cluster.item_labels.add(("cdc", pc))
            suffix = f"[{inner_dim}]" + _dims_suffix(reversed(concrete_bounds))
            cluster.type_str = "uint256" + suffix
            cluster._suffix = suffix
            clusters.append(cluster)
        return clusters

    def _static_external_arrays(self, consumed_loads: Set[int]) -> List[_Cluster]:
        """R3/R24: bound-checked item reads without an offset field."""
        # Symbolic-location loads (variable index) group by constant term;
        # constant-location loads with constant bound checks (unoptimized
        # constant index) join the same parameter.
        groups: Dict[int, List[int]] = {}
        for idx, load in enumerate(self._loads):
            if idx in consumed_loads:
                continue
            bound_levels = self._concrete_guard_bounds(
                load.guards, load.pc, {load.pc}, loc=load.loc
            )
            if not load.loc.is_const:
                if load.loc.labels:
                    continue  # offset-derived: not a static array
                if not self._stride_test(load.loc) or not bound_levels:
                    continue
                base_term = load.loc.const_term()
                groups.setdefault(base_term, []).append(idx)
                consumed_loads.add(idx)
            else:
                if not bound_levels:
                    continue
                # Constant-index access with runtime bound checks (the
                # unoptimized constant-index form): the index folded
                # into the location, so group by the *bound-check
                # sites* — one array's checks share their comparison
                # pcs, distinct arrays' checks do not.
                check_pcs = self._own_check_pcs(load)
                key = ("pcs",) + check_pcs if check_pcs else load.loc.value
                groups.setdefault(key, []).append(idx)
                consumed_loads.add(idx)
        clusters = []
        for group_key, idxs in groups.items():
            sample = self._loads[idxs[0]]
            bounds = self._concrete_guard_bounds(
                sample.guards, sample.pc,
                {self._loads[i].pc for i in idxs}, loc=sample.loc,
            )
            self._fire("R24" if self.is_vyper else "R3")
            position = min(
                self._loads[i].loc.value
                if self._loads[i].loc.is_const
                else self._loads[i].loc.const_term()
                for i in idxs
            )
            cluster = _Cluster(position=position, family="static")
            for idx in idxs:
                key = ("cd", self._cd_key(self._loads[idx].loc))
                cluster.labels.add(key)
                cluster.item_labels.add(key)
            suffix = _dims_suffix(reversed(bounds)) if bounds else "[1]"
            cluster.type_str = "uint256" + suffix
            cluster._suffix = suffix
            clusters.append(cluster)
        return clusters

    @staticmethod
    def _is_rounded_length(length: E.Expr, num_expr: E.Expr) -> bool:
        """R8's key: the copy length rounds num up to a 32-byte multiple.

        Matches the ``AND(num + 31, ~31)`` shape Solidity emits for
        bytes/string copies (as opposed to ``num * 32`` for arrays).
        """
        for node in length.iter_nodes():
            if node.op == "add" and node.args[0].is_const:
                if node.args[0].value == 31 and node.args[1].contains(num_expr):
                    return True
        return False

    # ------------------------------------------------------------------
    # Guard analysis
    # ------------------------------------------------------------------

    @property
    def _event_pcs(self) -> List[int]:
        pcs = getattr(self, "_event_pcs_cache", None)
        if pcs is None:
            pcs = sorted(
                {load.pc for load in self._loads}
                | {copy.pc for copy in self._copies}
            )
            self._event_pcs_cache = pcs
        return pcs

    def _guard_levels_of(self, guards: Sequence[Guard]) -> List[Tuple[int, E.Expr]]:
        """Memoized :func:`_guard_levels` — guard tuples repeat heavily."""
        if not self._indexed:
            return _guard_levels(guards)
        guards = tuple(guards)
        cache = self._memo.guard_levels
        try:
            return cache[guards]
        except KeyError:
            seen: Set[int] = set()
            levels: List[Tuple[int, E.Expr]] = []
            for guard in guards:
                cmp_expr = self._unwrap(guard.condition)
                if cmp_expr is None or guard.pc in seen:
                    continue
                seen.add(guard.pc)
                levels.append((guard.pc, cmp_expr))
            cache[guards] = levels
            return levels

    def _is_bound_right(self, num_expr: E.Expr) -> bool:
        """Is ``num_expr`` the bound side of any guard's comparison?"""
        if not self._indexed:
            return any(
                view is not None and view[1] == num_expr
                for load in self._loads
                for guard in load.guards
                for cmp_expr in (_unwrap_cmp(guard.condition),)
                if cmp_expr is not None
                for view in (self._bound_view(cmp_expr),)
            )
        rights = self._bound_rights
        if rights is None:
            rights = set()
            for load in self._loads:
                for guard in load.guards:
                    cmp_expr = self._unwrap(guard.condition)
                    if cmp_expr is None:
                        continue
                    view = self._bound_view(cmp_expr)
                    if view is not None:
                        rights.add(view[1])
            self._bound_rights = rights
        return num_expr in rights

    def _own_check_pcs(self, load: CalldataLoadEvent) -> Tuple[int, ...]:
        """Bound-check comparison sites in this load's attribution window."""
        prev_pc = self._prev_foreign_pc({load.pc})
        pcs = []
        for pc, cmp_expr in self._guard_levels_of(load.guards):
            view = self._bound_view(cmp_expr)
            if view is None:
                continue
            left, right = view
            if left.labels or not right.is_const:
                continue
            if self._has_cds(left):
                continue
            if prev_pc < pc < load.pc:
                pcs.append(pc)
        return tuple(sorted(pcs))

    def _prev_foreign_pc(self, own_pcs: Set[int]) -> int:
        """The last call-data access of *another* parameter before ours.

        Bound checks guard only the parameter whose access they precede;
        anything at or before another parameter's access belongs to that
        parameter (bound checks sit between a parameter's own reads).
        """
        if not own_pcs:
            return 0
        own_min = min(own_pcs)
        prev = 0
        for pc in self._event_pcs:
            if pc < own_min and pc not in own_pcs:
                prev = max(prev, pc)
        return prev

    def _attributed_levels(
        self,
        event_pc: int,
        guards: Sequence[Guard],
        own_pcs: Set[int],
        loc: Optional[E.Expr] = None,
        num_expr: Optional[E.Expr] = None,
    ) -> List[Optional[int]]:
        """Bound-check levels relevant to one event, in guard order.

        ``None`` entries mark dynamic levels (the bound is the num
        field); integers are static dimension sizes.  A guard level is
        attributed to the event when

        * its index variable occurs in the event's location expression
          (external-mode reads with symbolic indices), or
        * its bound is exactly the parameter's num field (dynamic top
          dimension), or
        * it sits between the previous parameter's last access and this
          event in program order (concrete loop counters and constant
          indices, whose index folded away).
        """
        prev_pc = self._prev_foreign_pc(own_pcs)
        levels: List[Optional[int]] = []
        for pc, cmp_expr in self._guard_levels_of(guards):
            view = self._bound_view(cmp_expr)
            if view is None:
                continue
            left, right = view
            if left.labels:
                continue  # a value clamp, not an index check
            if self._has_cds(left):
                continue
            is_dynamic = num_expr is not None and right == num_expr
            relevant = is_dynamic
            if not relevant and loc is not None and not left.is_const:
                relevant = (
                    left in loc.node_set()
                    if self._indexed
                    else loc.contains(left)
                )
            if not relevant and prev_pc < pc < event_pc:
                relevant = True
            if not relevant:
                continue
            if is_dynamic:
                levels.append(None)
            elif right.is_const and not right.labels and 0 < right.value <= 1 << 32:
                levels.append(right.value)
        return levels

    def _concrete_guard_bounds(
        self,
        guards: Sequence[Guard],
        event_pc: int = 1 << 62,
        own_pcs: Optional[Set[int]] = None,
        loc: Optional[E.Expr] = None,
        num_expr: Optional[E.Expr] = None,
    ) -> List[int]:
        """Constant dimension bounds attributed to one event."""
        levels = self._attributed_levels(
            event_pc, guards, own_pcs or set(), loc=loc, num_expr=num_expr
        )
        return [b for b in levels if b is not None]

    # ------------------------------------------------------------------
    # Step 4: fine-grained refinement
    # ------------------------------------------------------------------

    def _uses_for(self, labels: Set[Tuple[str, object]]) -> List[UseEvent]:
        if not self._indexed:
            return [use for use in self._uses if use.labels & labels]
        idxs: Set[int] = set()
        for label in labels:
            idxs.update(self._uses_by_label.get(label, ()))
        return [self._uses[i] for i in sorted(idxs)]

    def _has_use_kind(self, cluster: _Cluster, kinds: Tuple[str, ...]) -> bool:
        labels = cluster.item_labels or cluster.labels
        return any(use.kind in kinds for use in self._uses_for(labels))

    def _refine_basic(self, cluster: _Cluster) -> str:
        if self.is_vyper:
            return self._refine_vyper_basic(cluster.labels)
        return self._refine_labelled_basic(cluster.labels)

    def _refine_labelled_basic(self, labels: Set[Tuple[str, object]]) -> str:
        """Solidity basic-type refinement: R11-R18.

        Candidates are gathered family by family in priority order; the
        first fires and decides the type (exactly the historical early
        returns), and every lower-priority family whose evidence also
        matched is recorded as a shadowed conflict on the tracker.
        """
        uses = self._uses_for(labels)
        has_arith = any(u.kind == "arith" for u in uses)
        candidates: List[Tuple[str, str]] = []
        for use in uses:
            if use.kind == "bool_mask":
                candidates.append(("R14", "bool"))
                break
        for use in uses:
            if use.kind == "signextend" and use.operand is not None and use.operand < 31:
                candidates.append(("R13", f"int{(use.operand + 1) * 8}"))
                break
        for use in uses:
            if use.kind == "and_mask" and use.operand is not None:
                low = R.low_mask_bytes(use.operand)
                if 0 < low < 32:
                    if low == 20 and not has_arith:
                        candidates.append(("R16", "address"))
                    else:
                        candidates.append(("R11", f"uint{low * 8}"))
                    break
                high = R.high_mask_bytes(use.operand)
                if 0 < high < 32:
                    candidates.append(("R12", f"bytes{high}"))
                    break
        for use in uses:
            if use.kind == "signed_op":
                candidates.append(("R15", "int256"))
                break
        for use in uses:
            if use.kind == "byte":
                candidates.append(("R18", "bytes32"))
                break
        if not candidates:
            return "uint256"
        rule_id, type_str = candidates[0]
        self._fire(rule_id)
        for shadowed, _ in candidates[1:]:
            self.tracker.conflict(shadowed)
        return type_str

    def _refine_vyper_basic(self, labels: Set[Tuple[str, object]]) -> str:
        """Vyper basic-type refinement via range clamps: R27-R31."""
        uses = self._uses_for(labels)
        signed_bounds = [
            u.operand for u in uses if u.kind == "signed_bound" and u.operand is not None
        ]
        lt_bounds = [
            u.operand
            for u in uses
            if u.kind in ("lt_bound", "gt_bound") and u.operand is not None
        ]
        for bound in lt_bounds:
            if bound in (R.VYPER_ADDRESS_BOUND, R.VYPER_ADDRESS_BOUND - 1):
                self._fire("R27")
                return "address"
        for bound in lt_bounds:
            if bound in (R.VYPER_BOOL_BOUND, R.VYPER_BOOL_BOUND - 1):
                self._fire("R30")
                return "bool"
        signed_values = {_as_signed(b) for b in signed_bounds}
        if signed_values & {R.VYPER_DECIMAL_HI, R.VYPER_DECIMAL_LO,
                            R.VYPER_DECIMAL_HI + 1, R.VYPER_DECIMAL_LO - 1}:
            self._fire("R29")
            return "fixed168x10"
        if signed_values & {R.VYPER_INT128_HI, R.VYPER_INT128_LO,
                            R.VYPER_INT128_HI + 1, R.VYPER_INT128_LO - 1}:
            self._fire("R28")
            return "int128"
        for use in uses:
            if use.kind == "byte":
                self._fire("R31")
                return "bytes32"
        return "uint256"

    def _refine_array_items(self, cluster: _Cluster) -> str:
        """Fix the item type of an array cluster from item-value uses."""
        suffix = cluster._suffix
        if suffix is None:
            return cluster.type_str
        labels = cluster.item_labels or cluster.labels
        if self.is_vyper:
            item = self._refine_vyper_basic(labels)
        else:
            item = self._refine_labelled_basic(labels)
        return item + suffix


def _as_signed(value: int) -> int:
    return value - (1 << 256) if value >> 255 else value


def infer_function(
    events: FunctionEvents,
    tracker: RuleTracker,
    semantic_idioms: bool = True,
    coarse_only: bool = False,
    memo: Optional[PredicateMemo] = None,
    indexed: bool = True,
) -> InferredFunction:
    """Recover one function's parameter list from its TASE events.

    ``memo`` shares one :class:`PredicateMemo` across the functions of
    an engine run; ``indexed=False`` selects the retained reference
    path (the differential-testing oracle).
    """
    return TypeInference(
        events, tracker, semantic_idioms, coarse_only, memo=memo,
        indexed=indexed,
    ).run()
