"""SigRec core: TASE (type-aware symbolic execution) and rules R1-R31."""

from repro.sigrec.api import SigRec, RecoveredSignature
from repro.sigrec.rules import RULES, RuleTracker

__all__ = ["SigRec", "RecoveredSignature", "RULES", "RuleTracker"]
