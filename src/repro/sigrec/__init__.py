"""SigRec core: TASE (type-aware symbolic execution) and rules R1-R31."""

from repro.sigrec.api import SigRec, RecoveredSignature
from repro.sigrec.batch import BatchRecovery, BatchStats
from repro.sigrec.cache import ResultCache
from repro.sigrec.rules import RULES, RuleTracker

__all__ = [
    "SigRec",
    "RecoveredSignature",
    "BatchRecovery",
    "BatchStats",
    "ResultCache",
    "RULES",
    "RuleTracker",
]
