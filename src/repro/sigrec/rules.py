"""The 31 type-inference rules (paper §3) and their usage tracker.

Each rule is registered with its paper id, the instruction family it
keys on, and a one-line summary.  The decision logic lives in
:mod:`repro.sigrec.inference`, which *fires* rules through a
:class:`RuleTracker`; the tracker's counters reproduce Fig. 19 (rule
usage frequency).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Union


@dataclass(frozen=True)
class Rule:
    rule_id: str
    category: str  # "CALLDATALOAD" | "CALLDATACOPY" | "OTHER"
    summary: str


_RULE_DEFS = [
    ("R1", "CALLDATALOAD", "two chained CALLDATALOADs read an offset field then a num field: dynamic array / bytes / string"),
    ("R2", "CALLDATALOAD", "item read whose location adds the offset field and multiplies by 32 under n bound checks: n-dim dynamic array (external)"),
    ("R3", "CALLDATALOAD", "item read without offset field under n constant bound checks: n-dim static array (external)"),
    ("R4", "CALLDATALOAD", "a 32-byte head read with no structural hints: basic type, provisionally uint256"),
    ("R5", "CALLDATACOPY", "exactly one CALLDATACOPY consumes the offset field: 1-dim dynamic array / bytes / string (public)"),
    ("R6", "CALLDATACOPY", "CALLDATACOPY with constant source and length: 1-dim static array (public)"),
    ("R7", "CALLDATACOPY", "copy length is num*32: 1-dim dynamic array (public)"),
    ("R8", "CALLDATACOPY", "copy length rounds num up to a 32-byte multiple: bytes / string (public)"),
    ("R9", "CALLDATACOPY", "constant-source copies inside constant-bound nested loops: (n+1)-dim static array (public)"),
    ("R10", "CALLDATACOPY", "row copies inside a num-bounded loop: (n+1)-dim dynamic array (public)"),
    ("R11", "OTHER", "AND with a low mask of x bytes: uint(256-8x) (address if 20 bytes and never in arithmetic)"),
    ("R12", "OTHER", "AND with a high mask keeping x bytes: bytes(32-x)... i.e. bytesM"),
    ("R13", "OTHER", "SIGNEXTEND x: int((x+1)*8)"),
    ("R14", "OTHER", "two consecutive ISZEROs: bool"),
    ("R15", "OTHER", "a signed operation touches the value: int256"),
    ("R16", "OTHER", "20-byte mask and no mathematics: address"),
    ("R17", "OTHER", "an individual byte of the value is accessed: bytes (not string)"),
    ("R18", "OTHER", "BYTE extracts from the unmasked word: bytes32 (not uint256)"),
    ("R19", "CALLDATALOAD", "offset chain inside a struct: struct containing a nested array"),
    ("R20", "OTHER", "range checks instead of masks: Vyper bytecode"),
    ("R21", "CALLDATALOAD", "offset field followed by component reads at constant slots: struct"),
    ("R22", "CALLDATALOAD", "offset fields dereferenced through further offset fields: nested array"),
    ("R23", "CALLDATACOPY", "copy of num field plus maxLen bytes: Vyper fixed-size byte array / string"),
    ("R24", "CALLDATALOAD", "constant-bound checked item reads in Vyper: fixed-size list"),
    ("R25", "CALLDATALOAD", "32-byte head read in Vyper: basic type, provisionally uint256"),
    ("R26", "OTHER", "individual byte accessed: Vyper fixed-size byte array (not string)"),
    ("R27", "OTHER", "range check against 2^160: Vyper address"),
    ("R28", "OTHER", "range checks against +/-2^127: Vyper int128"),
    ("R29", "OTHER", "range checks against the decimal bounds: Vyper decimal"),
    ("R30", "OTHER", "range check against 2: Vyper bool"),
    ("R31", "OTHER", "BYTE extracts from the unmasked word: Vyper bytes32"),
]

RULES: Dict[str, Rule] = {
    rule_id: Rule(rule_id, category, summary)
    for rule_id, category, summary in _RULE_DEFS
}


class RuleTracker:
    """Counts rule applications across recoveries (Fig. 19).

    Besides fire counts, the tracker records *conflicts*: a rule whose
    evidence was present but that lost to a higher-priority rule during
    basic-type refinement (e.g. a signed use shadowed by an AND mask).
    Conflicts never change the recovered type — they are a diagnostic
    of how contested the evidence was.
    """

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {rule_id: 0 for rule_id in RULES}
        self.conflicts: Dict[str, int] = {}

    def fire(self, rule_id: str, times: int = 1) -> None:
        if rule_id not in self.counts:
            raise KeyError(f"unknown rule: {rule_id}")
        self.counts[rule_id] += times

    def conflict(self, rule_id: str, times: int = 1) -> None:
        """Record that ``rule_id`` matched but was shadowed by a winner."""
        if rule_id not in self.counts:
            raise KeyError(f"unknown rule: {rule_id}")
        self.conflicts[rule_id] = self.conflicts.get(rule_id, 0) + times

    def merge(self, other: Union["RuleTracker", Mapping[str, int]]) -> None:
        """Add another tracker's counts (or a plain rule->count mapping).

        Counters are purely additive, so merging per-worker or cached
        per-bytecode counts reproduces a serial run's totals exactly —
        this is how the batch executor keeps Fig.-19 statistics correct.
        Merging a full :class:`RuleTracker` also folds in its conflict
        counts; a plain mapping carries fire counts only (the cache
        stores just those).
        """
        counts = other.counts if isinstance(other, RuleTracker) else other
        for rule_id, count in counts.items():
            if rule_id not in self.counts:
                raise KeyError(f"unknown rule: {rule_id}")
            self.counts[rule_id] += count
        if isinstance(other, RuleTracker):
            for rule_id, count in other.conflicts.items():
                self.conflicts[rule_id] = self.conflicts.get(rule_id, 0) + count

    def most_used(self) -> str:
        return max(self.counts, key=lambda r: self.counts[r])

    def least_used(self) -> str:
        return min(self.counts, key=lambda r: self.counts[r])

    def total(self) -> int:
        return sum(self.counts.values())

    def as_dict(self) -> Dict[str, int]:
        return dict(self.counts)


# Masks used by R11/R12/R16 and their Vyper counterparts.

def low_mask_bytes(mask: int) -> int:
    """If ``mask`` keeps the low k bytes (0xff..ff), return k, else 0."""
    if mask == 0:
        return 0
    k = 0
    m = mask
    while m & 0xFF == 0xFF:
        m >>= 8
        k += 1
    return k if m == 0 and 1 <= k <= 32 else 0


def high_mask_bytes(mask: int) -> int:
    """If ``mask`` keeps the high k bytes of a 32-byte word, return k."""
    if mask == 0:
        return 0
    for k in range(1, 33):
        keep = ((1 << (8 * k)) - 1) << (8 * (32 - k))
        if mask == keep:
            return k
    return 0


# Vyper clamp constants (R27-R30 and decimal R29).
VYPER_ADDRESS_BOUND = 1 << 160
VYPER_BOOL_BOUND = 2
VYPER_INT128_HI = (1 << 127) - 1
VYPER_INT128_LO = -(1 << 127)
VYPER_DECIMAL_HI = ((1 << 127) - 1) * 10**10
VYPER_DECIMAL_LO = -(1 << 127) * 10**10
