"""Symbolic expressions for TASE.

Immutable, structurally-hashed expression trees over 256-bit words.  The
leaves are constants, 32-byte call-data reads (``calldata(loc)``), reads
from memory regions that were filled from the call data (``mem``), and
free environment symbols (``env``) — TASE treats every value read from
the environment as a free symbol because it cares about how parameters
are *used*, not about program logic (paper §4.2).

Two design points matter for the rules:

* **Constant folding and light normalization.**  Operations on constants
  fold; commutative operations order a constant operand first; nested
  constant additions collapse.  This keeps the location expressions the
  rules inspect (e.g. ``add(4, calldata(4))`` for a num-field read) in a
  predictable shape regardless of the operand order the compiler emitted.
* **Taint labels.**  Every node carries the frozen set of call-data
  *sources* it transitively depends on.  A source is ``("cd", loc_key)``
  for a CALLDATALOAD or ``("cdc", region_id)`` for a CALLDATACOPY'd
  memory region.  Step 3 of TASE ("introducing parameter-related
  symbols") maps sources to parameters; usage rules (R11-R18, R26-R31)
  then fire on any expression whose labels intersect a parameter.

Interning lives in :class:`ExprArena`: a structural hash-consing arena
keyed by the *identities* of already-interned children (integer object
ids), so a cache hit costs one small-tuple hash and never a recursive
structural comparison.  Because two nodes share an arena slot only when
their children are the *same objects*, label provenance is preserved by
construction — no label-purity analysis is needed, unlike the old
module-global caches.  The TASE engine owns one arena per contract
(``TASEEngine.arena``); the module-level constructors below delegate to
a bounded default arena for cold-path callers (inference probes, tests).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, Optional, Tuple

_WORD = 1 << 256
_MASK = _WORD - 1
_SIGN_BIT = 1 << 255

Label = Tuple[str, object]

#: The shared empty label set (CPython interns the empty frozenset, but
#: naming it keeps the hot constructor free of even the call).
_NO_LABELS: FrozenSet[Label] = frozenset()


def _signed(value: int) -> int:
    return value - _WORD if value & _SIGN_BIT else value


_setattr = object.__setattr__


class Expr:
    """One immutable symbolic expression node.

    Construction is the hottest allocation in TASE, so ``__init__``
    does the minimum: the structural hash and the ``eval_const`` memo
    live in *lazy* slots, materialized on first use — most nodes
    (intermediate stack values) are never hashed and never re-folded,
    and paying one tuple hash per constructed node dominated the old
    eager scheme.
    """

    __slots__ = ("op", "args", "val", "labels", "_hash", "_const_memo",
                 "_node_set", "_repr")

    def __init__(
        self,
        op: str,
        args: Tuple["Expr", ...] = (),
        val: object = None,
        labels: Optional[FrozenSet[Label]] = None,
    ) -> None:
        sa = _setattr
        sa(self, "op", op)
        sa(self, "args", args)
        sa(self, "val", val)
        if labels is None:
            if args:
                labels = args[0].labels
                for arg in args[1:]:
                    labels = labels | arg.labels
            else:
                labels = _NO_LABELS
        sa(self, "labels", labels)

    def __setattr__(self, name, value):  # pragma: no cover - immutability guard
        raise AttributeError("Expr is immutable")

    def __hash__(self) -> int:
        try:
            return self._hash
        except AttributeError:
            h = hash((self.op, self.args, self.val))
            _setattr(self, "_hash", h)
            return h

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Expr):
            return NotImplemented
        return (
            hash(self) == hash(other)
            and self.op == other.op
            and self.val == other.val
            and self.args == other.args
        )

    # ------------------------------------------------------------------

    @property
    def is_const(self) -> bool:
        return self.op == "const"

    @property
    def value(self) -> int:
        if self.op != "const":
            raise ValueError(f"not a constant: {self}")
        return self.val  # type: ignore[return-value]

    def iter_nodes(self) -> Iterator["Expr"]:
        """All nodes in the tree, pre-order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.args)

    def contains(self, sub: "Expr") -> bool:
        """Structural containment: does ``sub`` occur anywhere in self?"""
        return any(node == sub for node in self.iter_nodes())

    def node_set(self) -> FrozenSet["Expr"]:
        """The structural node set, materialized lazily and cached.

        ``sub in expr.node_set()`` answers :meth:`contains` in O(1)
        after the first call — the indexed inference path batches its
        derivation queries through this instead of re-walking the tree
        per probe.
        """
        try:
            return self._node_set
        except AttributeError:
            nodes = frozenset(self.iter_nodes())
            _setattr(self, "_node_set", nodes)
            return nodes

    def const_term(self) -> int:
        """The constant addend of a sum expression (0 when none).

        ``add(36, mul(32, i))`` -> 36; a bare constant returns itself.
        """
        if self.is_const:
            return self.value
        if self.op == "add":
            return sum(arg.value for arg in self.args if arg.is_const) & _MASK
        return 0

    def __repr__(self) -> str:
        # Cached on the node: reprs recurse structurally, and the event
        # digest sorts nested label expressions by repr, so an uncached
        # repr re-walks shared subtrees once per ancestor.
        try:
            return self._repr
        except AttributeError:
            pass
        if self.op == "const":
            text = f"{self.value:#x}"
        elif self.op == "env":
            text = f"env({self.val})"
        elif self.op == "mem":
            text = (
                f"mem({self.val},{self.args[0]!r})"
                if self.args
                else f"mem({self.val})"
            )
        else:
            inner = ",".join(repr(a) for a in self.args)
            text = f"{self.op}({inner})"
        _setattr(self, "_repr", text)
        return text


# ----------------------------------------------------------------------
# Constructors
# ----------------------------------------------------------------------

_COMMUTATIVE = frozenset(["add", "mul", "and", "or", "xor", "eq"])

_FOLD = {
    "add": lambda a, b: a + b,
    "mul": lambda a, b: a * b,
    "sub": lambda a, b: a - b,
    "div": lambda a, b: 0 if b == 0 else a // b,
    "sdiv": lambda a, b: 0 if b == 0 else _sdiv(a, b),
    "mod": lambda a, b: 0 if b == 0 else a % b,
    "smod": lambda a, b: 0 if b == 0 else _smod(a, b),
    "exp": lambda a, b: pow(a, b, _WORD),
    "signextend": lambda a, b: _signextend(a, b),
    "lt": lambda a, b: 1 if a < b else 0,
    "gt": lambda a, b: 1 if a > b else 0,
    "slt": lambda a, b: 1 if _signed(a) < _signed(b) else 0,
    "sgt": lambda a, b: 1 if _signed(a) > _signed(b) else 0,
    "eq": lambda a, b: 1 if a == b else 0,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "byte": lambda a, b: (b >> (8 * (31 - a))) & 0xFF if a < 32 else 0,
    "shl": lambda a, b: 0 if a >= 256 else (b << a) & _MASK,
    "shr": lambda a, b: 0 if a >= 256 else b >> a,
    "sar": lambda a, b: _sar(a, b),
}


def _sdiv(a: int, b: int) -> int:
    sa, sb = _signed(a), _signed(b)
    quotient = abs(sa) // abs(sb)
    return (-quotient if (sa < 0) != (sb < 0) else quotient) & _MASK


def _smod(a: int, b: int) -> int:
    sa, sb = _signed(a), _signed(b)
    remainder = abs(sa) % abs(sb)
    return (-remainder if sa < 0 else remainder) & _MASK


def _signextend(k: int, value: int) -> int:
    if k >= 31:
        return value
    bit = (k + 1) * 8 - 1
    if value & (1 << bit):
        return (value | (_MASK ^ ((1 << (bit + 1)) - 1))) & _MASK
    return value & ((1 << (bit + 1)) - 1)


def _sar(shift: int, value: int) -> int:
    sv = _signed(value)
    if shift >= 256:
        return _MASK if sv < 0 else 0
    return (sv >> shift) & _MASK


class ExprArena:
    """A structural-interning arena for :class:`Expr` nodes.

    Hash-consing with **identity-keyed** compound keys: an interned
    node's cache key is built from the ``id()`` of its (already
    interned) children, so a hit costs one small-tuple hash — no
    recursive structural hashing or comparison — and two requests share
    a node only when their children are the *same objects*.  Identical
    children imply identical labels, so sharing can never leak taint
    between expressions: the arena needs no label-purity restriction
    and therefore no "stop interning" size cliff.  (Keys embedding
    ``id()`` stay valid because the interned node's ``args`` hold
    strong references to exactly the objects the ids name.)

    Interning also shares the per-node ``eval_const`` memo
    (``_const_memo``) across every occurrence of a hot compound — loop
    guards and mask expressions are re-evaluated once instead of once
    per unrolled iteration.

    The TASE engine owns one arena per contract, so nodes die with the
    engine.  ``max_interned`` bounds the compound table for long-lived
    arenas (the module-level default): past the cap, nodes are still
    built correctly, just not shared.
    """

    __slots__ = ("_consts", "_nodes", "_max_interned")

    def __init__(self, max_interned: Optional[int] = None) -> None:
        self._consts: Dict[int, Expr] = {}
        self._nodes: Dict[object, Expr] = {}
        self._max_interned = max_interned

    def __len__(self) -> int:
        return len(self._consts) + len(self._nodes)

    def _intern(self, key: object, node: Expr) -> Expr:
        cap = self._max_interned
        if cap is None or len(self._nodes) < cap:
            self._nodes[key] = node
        return node

    # -- leaves --------------------------------------------------------

    def const(self, value: int) -> Expr:
        value &= _MASK
        node = self._consts.get(value)
        if node is None:
            node = Expr("const", val=value)
            cap = self._max_interned
            if cap is None or len(self._consts) < cap:
                self._consts[value] = node
        return node

    def env(self, name: str) -> Expr:
        """A free environment symbol — unique by convention, never shared."""
        return Expr("env", val=name)

    def calldatasize(self) -> Expr:
        node = self._nodes.get("cds")
        if node is None:
            node = self._intern("cds", Expr("calldatasize"))
        return node

    def calldata(self, loc: Expr) -> Expr:
        """A 32-byte read of the call data at location ``loc``.

        The taint-source label is ``("cd", offset)`` for a constant
        offset and ``("cd", loc)`` — the location *expression itself* —
        for a symbolic one (structural equality gives the same sharing
        the old ``repr(loc)`` string key did, without the repr cost).
        """
        if loc.is_const:
            key = ("cd", loc.value)
            node = self._nodes.get(key)
            if node is None:
                node = self._intern(
                    key,
                    Expr("calldata", (loc,), labels=loc.labels | {("cd", loc.value)}),
                )
            return node
        key = ("cd*", id(loc))
        node = self._nodes.get(key)
        if node is None:
            node = self._intern(
                key, Expr("calldata", (loc,), labels=loc.labels | {("cd", loc)})
            )
        return node

    def mem_read(
        self, region_id: int, offset: Expr, extra_labels: FrozenSet[Label]
    ) -> Expr:
        """A word read from a call-data-copied memory region.

        ``extra_labels`` (the copy's source taint) is part of the key:
        structurally identical reads with different provenance must
        stay distinct nodes.
        """
        key = ("mem", region_id, id(offset), extra_labels)
        node = self._nodes.get(key)
        if node is None:
            node = self._intern(
                key,
                Expr(
                    "mem", (offset,), val=region_id,
                    labels=offset.labels | extra_labels | {("cdc", region_id)},
                ),
            )
        return node

    # -- compounds -----------------------------------------------------

    def binop(self, op: str, a: Expr, b: Expr) -> Expr:
        """Build a binary operation with folding and normalization."""
        if a.is_const:
            if b.is_const:
                fold = _FOLD.get(op)
                if fold is not None:
                    return self.const(fold(a.value, b.value))
        elif b.is_const and op in _COMMUTATIVE:
            a, b = b, a
        if a.is_const:
            # Collapse nested constant additions:
            # add(c1, add(c2, x)) -> add(c1+c2, x)
            if op == "add":
                if b.op == "add" and b.args[0].is_const:
                    a = self.const(a.value + b.args[0].value)
                    b = b.args[1]
                elif a.value == 0:
                    return b
            elif op == "mul" and a.value == 1:
                return b
        key = (op, id(a), id(b))
        node = self._nodes.get(key)
        if node is None:
            node = self._intern(key, Expr(op, (a, b)))
        return node

    def ternop(self, op: str, a: Expr, b: Expr, c: Expr) -> Expr:
        if a.is_const and b.is_const and c.is_const:
            if op == "addmod":
                n = c.value
                return self.const(0 if n == 0 else (a.value + b.value) % n)
            if op == "mulmod":
                n = c.value
                return self.const(0 if n == 0 else (a.value * b.value) % n)
        key = (op, id(a), id(b), id(c))
        node = self._nodes.get(key)
        if node is None:
            node = self._intern(key, Expr(op, (a, b, c)))
        return node

    def iszero(self, a: Expr) -> Expr:
        if a.is_const:
            return self.const(1 if a.value == 0 else 0)
        key = ("iszero", id(a))
        node = self._nodes.get(key)
        if node is None:
            node = self._intern(key, Expr("iszero", (a,)))
        return node

    def bit_not(self, a: Expr) -> Expr:
        if a.is_const:
            return self.const(~a.value)
        key = ("not", id(a))
        node = self._nodes.get(key)
        if node is None:
            node = self._intern(key, Expr("not", (a,)))
        return node

    def cmp(self, op: str, a: Expr, b: Expr) -> Expr:
        """Build an *unfolded* comparison so guards keep their structure."""
        key = ("cmp", op, id(a), id(b))
        node = self._nodes.get(key)
        if node is None:
            node = self._intern(key, Expr(op, (a, b)))
        return node

    def iszero_unfolded(self, a: Expr) -> Expr:
        """Unfolded ISZERO (the engine folds on demand via eval_const)."""
        key = ("iszero", id(a))
        node = self._nodes.get(key)
        if node is None:
            node = self._intern(key, Expr("iszero", (a,)))
        return node


#: The bounded default arena behind the module-level constructors.
#: Cold-path callers (inference probes, rule tests) share it; the TASE
#: hot path uses a per-engine arena instead.  Its contents only affect
#: node *identity*, never labels or values, so a pre-filled arena
#: inherited by a forked worker cannot change results.
_DEFAULT_ARENA = ExprArena(max_interned=65536)


def const(value: int) -> Expr:
    return _DEFAULT_ARENA.const(value)


ZERO = const(0)
ONE = const(1)


def env(name: str) -> Expr:
    """A free environment symbol (CALLER, TIMESTAMP, unknown SLOAD...)."""
    return _DEFAULT_ARENA.env(name)


def calldata(loc: Expr) -> Expr:
    """A 32-byte read of the call data at symbolic location ``loc``."""
    return _DEFAULT_ARENA.calldata(loc)


def calldatasize() -> Expr:
    return _DEFAULT_ARENA.calldatasize()


def mem_read(region_id: int, offset: Expr, extra_labels: FrozenSet[Label]) -> Expr:
    """A word read from a call-data-copied memory region."""
    return _DEFAULT_ARENA.mem_read(region_id, offset, extra_labels)


def sha3(seed: int) -> Expr:
    return Expr("env", val=f"sha3_{seed}")


def binop(op: str, a: Expr, b: Expr) -> Expr:
    """Build a binary operation with folding and normalization."""
    return _DEFAULT_ARENA.binop(op, a, b)


def ternop(op: str, a: Expr, b: Expr, c: Expr) -> Expr:
    return _DEFAULT_ARENA.ternop(op, a, b, c)


def iszero(a: Expr) -> Expr:
    return _DEFAULT_ARENA.iszero(a)


def bit_not(a: Expr) -> Expr:
    return _DEFAULT_ARENA.bit_not(a)
