"""Symbolic expressions for TASE.

Immutable, structurally-hashed expression trees over 256-bit words.  The
leaves are constants, 32-byte call-data reads (``calldata(loc)``), reads
from memory regions that were filled from the call data (``mem``), and
free environment symbols (``env``) — TASE treats every value read from
the environment as a free symbol because it cares about how parameters
are *used*, not about program logic (paper §4.2).

Two design points matter for the rules:

* **Constant folding and light normalization.**  Operations on constants
  fold; commutative operations order a constant operand first; nested
  constant additions collapse.  This keeps the location expressions the
  rules inspect (e.g. ``add(4, calldata(4))`` for a num-field read) in a
  predictable shape regardless of the operand order the compiler emitted.
* **Taint labels.**  Every node carries the frozen set of call-data
  *sources* it transitively depends on.  A source is ``("cd", loc_key)``
  for a CALLDATALOAD or ``("cdc", region_id)`` for a CALLDATACOPY'd
  memory region.  Step 3 of TASE ("introducing parameter-related
  symbols") maps sources to parameters; usage rules (R11-R18, R26-R31)
  then fire on any expression whose labels intersect a parameter.
"""

from __future__ import annotations

from typing import FrozenSet, Iterator, Optional, Tuple

_WORD = 1 << 256
_MASK = _WORD - 1
_SIGN_BIT = 1 << 255

Label = Tuple[str, object]


def _signed(value: int) -> int:
    return value - _WORD if value & _SIGN_BIT else value


#: Sentinel marking an :class:`Expr` whose folded value is not computed
#: yet (``None`` is a legitimate answer, meaning "not a constant").
_UNEVALUATED = object()


class Expr:
    """One immutable symbolic expression node."""

    __slots__ = ("op", "args", "val", "labels", "_hash", "_const_memo")

    def __init__(
        self,
        op: str,
        args: Tuple["Expr", ...] = (),
        val: object = None,
        labels: Optional[FrozenSet[Label]] = None,
    ) -> None:
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "args", args)
        object.__setattr__(self, "val", val)
        if labels is None:
            merged: FrozenSet[Label] = frozenset()
            for arg in args:
                merged |= arg.labels
            labels = merged
        object.__setattr__(self, "labels", labels)
        object.__setattr__(self, "_hash", hash((op, args, val)))
        object.__setattr__(self, "_const_memo", _UNEVALUATED)

    def __setattr__(self, name, value):  # pragma: no cover - immutability guard
        raise AttributeError("Expr is immutable")

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Expr):
            return NotImplemented
        return (
            self._hash == other._hash
            and self.op == other.op
            and self.val == other.val
            and self.args == other.args
        )

    # ------------------------------------------------------------------

    @property
    def is_const(self) -> bool:
        return self.op == "const"

    @property
    def value(self) -> int:
        if self.op != "const":
            raise ValueError(f"not a constant: {self}")
        return self.val  # type: ignore[return-value]

    def iter_nodes(self) -> Iterator["Expr"]:
        """All nodes in the tree, pre-order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.args)

    def contains(self, sub: "Expr") -> bool:
        """Structural containment: does ``sub`` occur anywhere in self?"""
        return any(node == sub for node in self.iter_nodes())

    def const_term(self) -> int:
        """The constant addend of a sum expression (0 when none).

        ``add(36, mul(32, i))`` -> 36; a bare constant returns itself.
        """
        if self.is_const:
            return self.value
        if self.op == "add":
            return sum(arg.value for arg in self.args if arg.is_const) & _MASK
        return 0

    def __repr__(self) -> str:
        if self.op == "const":
            return f"{self.value:#x}"
        if self.op == "env":
            return f"env({self.val})"
        if self.op == "mem":
            return f"mem({self.val},{self.args[0]!r})" if self.args else f"mem({self.val})"
        inner = ",".join(repr(a) for a in self.args)
        return f"{self.op}({inner})"


# ----------------------------------------------------------------------
# Constructors
# ----------------------------------------------------------------------

_CONST_CACHE = {}

# Hash-consing for common *compound* nodes.  Contracts build the same
# handful of shapes over and over — ``calldata(<const>)`` head reads and
# ``and(<mask>, <leaf>)``-style masks dominate — so interning them makes
# structural equality an identity check on the hot paths and lets the
# per-node ``eval_const`` memo (see ``_const_memo``) be shared across
# every occurrence.  Only nodes whose labels are a pure function of the
# cache key are interned, so sharing can never leak taint between
# expressions.
_COMPOUND_CACHE = {}
_COMPOUND_CACHE_MAX = 8192


def _intern(key, node: Expr) -> Expr:
    if len(_COMPOUND_CACHE) < _COMPOUND_CACHE_MAX:
        _COMPOUND_CACHE[key] = node
    return node


def const(value: int) -> Expr:
    value &= _MASK
    cached = _CONST_CACHE.get(value)
    if cached is None:
        cached = Expr("const", val=value)
        if len(_CONST_CACHE) < 4096:
            _CONST_CACHE[value] = cached
    return cached


ZERO = const(0)
ONE = const(1)


def env(name: str) -> Expr:
    """A free environment symbol (CALLER, TIMESTAMP, unknown SLOAD...)."""
    return Expr("env", val=name)


def calldata(loc: Expr) -> Expr:
    """A 32-byte read of the call data at symbolic location ``loc``."""
    if loc.is_const:
        # Constant-offset loads (the head reads of every parameter) are
        # hash-consed: their labels depend only on the offset.
        key = ("calldata", loc.value)
        cached = _COMPOUND_CACHE.get(key)
        if cached is not None:
            return cached
        return _intern(
            key, Expr("calldata", (loc,), labels=loc.labels | {("cd", loc.value)})
        )
    key = repr(loc)
    return Expr("calldata", (loc,), labels=loc.labels | {("cd", key)})


def calldatasize() -> Expr:
    return Expr("calldatasize")


def mem_read(region_id: int, offset: Expr, extra_labels: FrozenSet[Label]) -> Expr:
    """A word read from a call-data-copied memory region."""
    return Expr(
        "mem", (offset,), val=region_id,
        labels=offset.labels | extra_labels | {("cdc", region_id)},
    )


def sha3(seed: int) -> Expr:
    return Expr("env", val=f"sha3_{seed}")


def _label_pure_leaf(node: Expr) -> bool:
    """True when ``node``'s labels are fully determined by its structure.

    Only such nodes may appear in ``_COMPOUND_CACHE`` keys: the cache is
    process-global and ``Expr.__eq__``/``__hash__`` ignore ``labels``,
    so structurally-equal keys with *different* labels would collide and
    the interned node's taint would leak into every later lookup —
    across paths and across contracts.  ``calldatasize`` carries no
    labels and a constant-offset ``calldata`` read carries exactly
    ``{("cd", offset)}``, so both are safe to share.  ``mem`` reads
    carry engine-injected CALLDATACOPY source labels (``extra_labels``
    in :func:`mem_read`) and symbolic-location ``calldata`` reads can
    transitively contain such ``mem`` nodes, so neither is interned.
    """
    return node.op == "calldatasize" or (
        node.op == "calldata" and node.args[0].is_const
    )


_COMMUTATIVE = frozenset(["add", "mul", "and", "or", "xor", "eq"])

_FOLD = {
    "add": lambda a, b: a + b,
    "mul": lambda a, b: a * b,
    "sub": lambda a, b: a - b,
    "div": lambda a, b: 0 if b == 0 else a // b,
    "sdiv": lambda a, b: 0 if b == 0 else _sdiv(a, b),
    "mod": lambda a, b: 0 if b == 0 else a % b,
    "smod": lambda a, b: 0 if b == 0 else _smod(a, b),
    "exp": lambda a, b: pow(a, b, _WORD),
    "signextend": lambda a, b: _signextend(a, b),
    "lt": lambda a, b: 1 if a < b else 0,
    "gt": lambda a, b: 1 if a > b else 0,
    "slt": lambda a, b: 1 if _signed(a) < _signed(b) else 0,
    "sgt": lambda a, b: 1 if _signed(a) > _signed(b) else 0,
    "eq": lambda a, b: 1 if a == b else 0,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "byte": lambda a, b: (b >> (8 * (31 - a))) & 0xFF if a < 32 else 0,
    "shl": lambda a, b: 0 if a >= 256 else (b << a) & _MASK,
    "shr": lambda a, b: 0 if a >= 256 else b >> a,
    "sar": lambda a, b: _sar(a, b),
}


def _sdiv(a: int, b: int) -> int:
    sa, sb = _signed(a), _signed(b)
    quotient = abs(sa) // abs(sb)
    return (-quotient if (sa < 0) != (sb < 0) else quotient) & _MASK


def _smod(a: int, b: int) -> int:
    sa, sb = _signed(a), _signed(b)
    remainder = abs(sa) % abs(sb)
    return (-remainder if sa < 0 else remainder) & _MASK


def _signextend(k: int, value: int) -> int:
    if k >= 31:
        return value
    bit = (k + 1) * 8 - 1
    if value & (1 << bit):
        return (value | (_MASK ^ ((1 << (bit + 1)) - 1))) & _MASK
    return value & ((1 << (bit + 1)) - 1)


def _sar(shift: int, value: int) -> int:
    sv = _signed(value)
    if shift >= 256:
        return _MASK if sv < 0 else 0
    return (sv >> shift) & _MASK


def binop(op: str, a: Expr, b: Expr) -> Expr:
    """Build a binary operation with folding and normalization."""
    if a.is_const and b.is_const:
        fold = _FOLD.get(op)
        if fold is not None:
            return const(fold(a.value, b.value))
    if op in _COMMUTATIVE and b.is_const and not a.is_const:
        a, b = b, a
    # Collapse nested constant additions: add(c1, add(c2, x)) -> add(c1+c2, x)
    if op == "add" and a.is_const and b.op == "add" and b.args[0].is_const:
        return Expr("add", (const(a.value + b.args[0].value), b.args[1]))
    if op == "add" and a.is_const and a.value == 0:
        return b
    if op == "mul" and a.is_const and a.value == 1:
        return b
    # Hash-cons mask-shaped compounds: a constant applied directly to a
    # label-pure leaf (``and(0xff..., calldata(4))``, ``div(calldata(0),
    # 2^224)``, ``shr(224, calldata(0))``, ...).  Interned constants make
    # ``a`` identity-stable, and a leaf ``b`` keeps key comparisons
    # shallow.
    if a.is_const and _label_pure_leaf(b):
        key = (op, "c.", a.value, b)
        cached = _COMPOUND_CACHE.get(key)
        if cached is not None:
            return cached
        return _intern(key, Expr(op, (a, b)))
    if b.is_const and _label_pure_leaf(a):
        key = (op, ".c", a, b.value)
        cached = _COMPOUND_CACHE.get(key)
        if cached is not None:
            return cached
        return _intern(key, Expr(op, (a, b)))
    return Expr(op, (a, b))


def ternop(op: str, a: Expr, b: Expr, c: Expr) -> Expr:
    if a.is_const and b.is_const and c.is_const:
        if op == "addmod":
            n = c.value
            return const(0 if n == 0 else (a.value + b.value) % n)
        if op == "mulmod":
            n = c.value
            return const(0 if n == 0 else (a.value * b.value) % n)
    return Expr(op, (a, b, c))


def iszero(a: Expr) -> Expr:
    if a.is_const:
        return ONE if a.value == 0 else ZERO
    return Expr("iszero", (a,))


def bit_not(a: Expr) -> Expr:
    if a.is_const:
        return const(~a.value)
    return Expr("not", (a,))
