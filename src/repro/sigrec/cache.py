"""Persistent, content-addressed recovery-result cache.

At chain scale the corpus barely changes between runs (the paper's 37M
deployed contracts collapse to 368,679 unique bytecodes, and redeploys
are rare), so re-running TASE over bytecodes analyzed yesterday is pure
waste.  This cache stores the finished :class:`RecoveredSignature` lists
on disk, keyed by

* the SHA-256 of the runtime bytecode (content addressing — the same
  code deployed at a thousand addresses is one entry),
* a fingerprint of the engine options (``loop_bound`` etc. change what
  TASE observes, so results under different options never mix), and
* a cache schema version (bumped whenever the serialized layout or the
  rule semantics change, invalidating every stale entry at once).

Entries are one JSON file each, laid out as::

    <cache_dir>/<options fingerprint>/<sha[:2]>/<sha>.json

so changing any engine option simply lands in a sibling tree and an
``rm -rf`` of one fingerprint directory drops exactly one configuration.
Each entry also records the per-bytecode rule-usage counts, so a warm
run can replay them into the parent :class:`RuleTracker` and the Fig.-19
statistics come out identical to a cold run.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.framework import pass_versions
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.sigrec.api import RecoveredSignature

#: Bump to invalidate every existing cache entry (serialization layout
#: or inference-rule changes).
SCHEMA_VERSION = 1

#: Schema of the inference-memo tier (the canonical event digest, the
#: :class:`InferenceRecord` layout, and the replay semantics).  Folded
#: into :func:`options_fingerprint`, so a bump relocates *every* tier —
#: the function memo and result cache store inference products too.
INFERENCE_MEMO_SCHEMA_VERSION = 1


def options_fingerprint(options: Dict[str, object]) -> str:
    """A short stable digest of the engine/inference options.

    The *per-pass* analysis schema versions are part of the payload:
    with pruning or cross-checking enabled, what an analysis pass
    *means* changes what the engine may skip, so bumping any single
    pass version (:func:`repro.analysis.framework.pass_versions`) lands
    cached results — and every function-memo entry, which shares this
    fingerprint — in a fresh tree.  The inference-memo schema version
    rides along for the same reason: changing the event digest or the
    replay format must invalidate every caching tier at once.
    """
    payload = json.dumps(
        {
            "schema": SCHEMA_VERSION,
            "analysis_schema": pass_versions(),
            "inference_memo_schema": INFERENCE_MEMO_SCHEMA_VERSION,
            "options": options,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def _signature_to_dict(sig: RecoveredSignature) -> dict:
    return {
        "selector": sig.selector,
        "param_types": list(sig.param_types),
        "language": sig.language,
        "elapsed_seconds": sig.elapsed_seconds,
        "fired_rules": list(sig.fired_rules),
        "confidences": list(sig.confidences),
    }


def _signature_from_dict(data: dict) -> RecoveredSignature:
    # ``elapsed_seconds`` is deliberately NOT replayed: a cache hit does
    # no inference work, so reporting the original run's timing would
    # corrupt warm-run timing statistics.  The stored value (the cost of
    # the original analysis) stays on disk for forensics.
    return RecoveredSignature(
        selector=data["selector"],
        param_types=tuple(data["param_types"]),
        language=data["language"],
        elapsed_seconds=0.0,
        fired_rules=tuple(data["fired_rules"]),
        confidences=tuple(data["confidences"]),
    )


class ResultCache:
    """On-disk cache of per-bytecode recovery results.

    ``get``/``put`` are safe under concurrent writers: entries are
    written to a temporary file and atomically renamed into place, and a
    corrupt or mismatched entry is treated as a miss, never an error.
    """

    def __init__(
        self,
        directory: str,
        options: Dict[str, object],
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.directory = directory
        self.options = dict(options)
        self.fingerprint = options_fingerprint(self.options)
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.hits = 0
        self.misses = 0
        #: Misses caused by a *present but stale* entry (schema or
        #: fingerprint mismatch) rather than plain absence.
        self.invalidations = 0

    # ------------------------------------------------------------------

    def _entry_path(self, bytecode: bytes) -> str:
        sha = hashlib.sha256(bytecode).hexdigest()
        return os.path.join(
            self.directory, self.fingerprint, sha[:2], f"{sha}.json"
        )

    def get(
        self, bytecode: bytes
    ) -> Optional[Tuple[List[RecoveredSignature], Dict[str, int]]]:
        """The cached (signatures, rule counts) for ``bytecode``, or None."""
        path = self._entry_path(bytecode)
        present = False
        try:
            with open(path, "r", encoding="utf-8") as handle:
                present = True
                entry = json.load(handle)
            if (
                entry.get("schema") != SCHEMA_VERSION
                or entry.get("fingerprint") != self.fingerprint
            ):
                raise ValueError("stale cache entry")
            signatures = [
                _signature_from_dict(d) for d in entry["signatures"]
            ]
            rule_counts = {
                str(rule): int(count)
                for rule, count in entry.get("rule_counts", {}).items()
            }
        except (OSError, ValueError, KeyError, TypeError):
            # An entry that existed but failed validation is an
            # *invalidation* (stale schema/fingerprint, corrupt JSON);
            # plain absence is an ordinary miss.
            self.misses += 1
            if present:
                self.invalidations += 1
            metrics = self.metrics
            if metrics is not NULL_REGISTRY:
                metrics.counter("cache.misses").inc()
                if present:
                    metrics.counter("cache.invalidations").inc()
            return None
        self.hits += 1
        self.metrics.counter("cache.hits").inc()
        return signatures, rule_counts

    def attach_profile(self, bytecode: bytes, profile: dict) -> bool:
        """Add a profile document to an existing entry, atomically.

        Rewrites the entry file with the profile attached, preserving
        every other field (including the original elapsed timings).
        Returns False when there is no valid entry to attach to — the
        caller should ``put`` a full entry instead.
        """
        path = self._entry_path(bytecode)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
            if (
                entry.get("schema") != SCHEMA_VERSION
                or entry.get("fingerprint") != self.fingerprint
            ):
                return False
        except (OSError, ValueError):
            return False
        entry["profile"] = profile
        fd, tmp_path = tempfile.mkstemp(
            dir=os.path.dirname(path), suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(entry, handle)
            os.replace(tmp_path, path)
            self.metrics.counter("cache.writes").inc()
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        return True

    def get_profile(self, bytecode: bytes) -> Optional[dict]:
        """The cached contract-profile document, or ``None``.

        Profiles ride in the same entry file as the signatures; an
        entry written before profiling (or by a partial recovery) has
        none, and a stale/corrupt entry reads as absent.
        """
        try:
            with open(self._entry_path(bytecode), "r", encoding="utf-8") as f:
                entry = json.load(f)
            if (
                entry.get("schema") != SCHEMA_VERSION
                or entry.get("fingerprint") != self.fingerprint
            ):
                return None
            profile = entry.get("profile")
            return profile if isinstance(profile, dict) else None
        except (OSError, ValueError):
            return None

    def put(
        self,
        bytecode: bytes,
        signatures: List[RecoveredSignature],
        rule_counts: Dict[str, int],
        profile: Optional[dict] = None,
    ) -> None:
        path = self._entry_path(bytecode)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        entry = {
            "schema": SCHEMA_VERSION,
            "fingerprint": self.fingerprint,
            "options": self.options,
            "signatures": [_signature_to_dict(s) for s in signatures],
            # Only non-zero counters are stored; zeros are implied.
            "rule_counts": {r: c for r, c in rule_counts.items() if c},
        }
        if profile is not None:
            entry["profile"] = profile
        fd, tmp_path = tempfile.mkstemp(
            dir=os.path.dirname(path), suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(entry, handle)
            os.replace(tmp_path, path)
            self.metrics.counter("cache.writes").inc()
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def entry_count(self) -> int:
        """Entries on disk for this fingerprint (walks the tree)."""
        root = os.path.join(self.directory, self.fingerprint)
        count = 0
        for _dirpath, _dirnames, filenames in os.walk(root):
            count += sum(1 for f in filenames if f.endswith(".json"))
        return count


# ----------------------------------------------------------------------
# Function-body memoization (the middle cache tier).
#
# The contract cache above only helps when whole bytecodes repeat.  But
# *distinct* bytecodes overwhelmingly share function bodies — proxies,
# OpenZeppelin mixins, factory clones differing only in a constant or a
# metadata trailer.  The function memo keys one selector's recovery by
# the bytes that provably determine it (the dispatcher spine + closed
# region preimage from ``ContractAnalysis.function_preimage``, the
# selector, and the engine-options fingerprint), so a clone-heavy corpus
# pays for each shared body once.


@dataclass(frozen=True)
class FunctionRecord:
    """One memoized function recovery: the signature plus the rule
    activity it generated, so a hit replays Fig.-19 counters exactly."""

    selector: int
    param_types: Tuple[str, ...]
    language: str
    fired_rules: Tuple[str, ...]
    confidences: Tuple[str, ...]  # "high" / "medium" / "low" per param
    rule_counts: Dict[str, int]
    conflicts: Dict[str, int]

    def to_signature(self) -> RecoveredSignature:
        # elapsed_seconds=0.0 for the same reason as the contract cache:
        # a memo hit does no inference work.
        return RecoveredSignature(
            selector=self.selector,
            param_types=tuple(self.param_types),
            language=self.language,
            elapsed_seconds=0.0,
            fired_rules=tuple(self.fired_rules),
            confidences=tuple(self.confidences),
        )

    def to_dict(self) -> dict:
        return {
            "selector": self.selector,
            "param_types": list(self.param_types),
            "language": self.language,
            "fired_rules": list(self.fired_rules),
            "confidences": list(self.confidences),
            "rule_counts": {r: c for r, c in self.rule_counts.items() if c},
            "conflicts": {r: c for r, c in self.conflicts.items() if c},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FunctionRecord":
        return cls(
            selector=int(data["selector"]),
            param_types=tuple(str(t) for t in data["param_types"]),
            language=str(data["language"]),
            fired_rules=tuple(str(r) for r in data["fired_rules"]),
            confidences=tuple(str(c) for c in data["confidences"]),
            rule_counts={
                str(r): int(c) for r, c in data.get("rule_counts", {}).items()
            },
            conflicts={
                str(r): int(c) for r, c in data.get("conflicts", {}).items()
            },
        )


class FunctionMemo:
    """Two-tier (in-process LRU + optional on-disk) function-body memo.

    Keys are computed by :meth:`key_for` from the region preimage; the
    options fingerprint is folded into both the key and the disk layout
    (``<dir>/fn-<fingerprint>/<key[:2]>/<key>.json``) so results under
    different engine options never mix.  Disk writes are atomic
    (tmp + rename) and corrupt or stale entries read as misses.
    """

    def __init__(
        self,
        options: Dict[str, object],
        directory: Optional[str] = None,
        capacity: int = 65536,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.fingerprint = options_fingerprint(dict(options))
        self.directory = directory
        self.capacity = capacity
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._memory: "OrderedDict[str, FunctionRecord]" = OrderedDict()
        self.hits_memory = 0
        self.hits_disk = 0
        self.misses = 0
        self.writes = 0

    # ------------------------------------------------------------------

    def key_for(self, preimage: bytes) -> str:
        """The memo key for one function's determining bytes."""
        digest = hashlib.sha256()
        digest.update(self.fingerprint.encode("ascii"))
        digest.update(b"\x00")
        digest.update(preimage)
        return digest.hexdigest()

    def _entry_path(self, key: str) -> str:
        assert self.directory is not None
        return os.path.join(
            self.directory, f"fn-{self.fingerprint}", key[:2], f"{key}.json"
        )

    def get(self, key: str) -> Optional[FunctionRecord]:
        record = self._memory.get(key)
        if record is not None:
            self._memory.move_to_end(key)
            self.hits_memory += 1
            self.metrics.counter("memo.hits", tier="memory").inc()
            return record
        if self.directory is not None:
            try:
                with open(self._entry_path(key), "r", encoding="utf-8") as f:
                    entry = json.load(f)
                if entry.get("schema") != SCHEMA_VERSION:
                    raise ValueError("stale memo entry")
                record = FunctionRecord.from_dict(entry["record"])
            except (OSError, ValueError, KeyError, TypeError):
                record = None
            if record is not None:
                self._remember(key, record)
                self.hits_disk += 1
                self.metrics.counter("memo.hits", tier="disk").inc()
                return record
        self.misses += 1
        self.metrics.counter("memo.misses").inc()
        return None

    def put(self, key: str, record: FunctionRecord) -> None:
        self._remember(key, record)
        self.writes += 1
        self.metrics.counter("memo.writes").inc()
        if self.directory is None:
            return
        path = self._entry_path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        entry = {"schema": SCHEMA_VERSION, "record": record.to_dict()}
        fd, tmp_path = tempfile.mkstemp(
            dir=os.path.dirname(path), suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(entry, handle)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    def _remember(self, key: str, record: FunctionRecord) -> None:
        self._memory[key] = record
        self._memory.move_to_end(key)
        while len(self._memory) > self.capacity:
            self._memory.popitem(last=False)

    # ------------------------------------------------------------------

    @property
    def hits(self) -> int:
        return self.hits_memory + self.hits_disk

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


# ----------------------------------------------------------------------
# Inference memoization (the third cache tier).
#
# The function memo above keys on the *bytecode preimage* of a function
# body, so it only helps when the dispatcher spine and closed region
# bytes repeat exactly.  Clone-heavy corpora routinely defeat that —
# constants, metadata, and region ids differ while the recorded *event
# stream* is equivalent.  The inference memo sits one layer deeper: it
# keys an :class:`InferenceRecord` by the canonical, selector-independent
# digest of ``FunctionEvents`` (:func:`repro.sigrec.events.events_digest`),
# so any two functions whose event streams normalize identically share
# one inference, even across unrelated contracts.  TASE still runs; only
# the rule-inference step is skipped, with its rule/conflict counters
# replayed exactly (the Fig.-19 parity invariant).


@dataclass(frozen=True)
class InferenceRecord:
    """One memoized inference product, minus the selector.

    The event digest is selector-independent (two different selectors
    with equivalent bodies share an entry), so the selector is supplied
    at replay time by :meth:`to_signature`.
    """

    param_types: Tuple[str, ...]
    language: str
    fired_rules: Tuple[str, ...]
    confidences: Tuple[str, ...]  # "high" / "medium" / "low" per param
    rule_counts: Dict[str, int]
    conflicts: Dict[str, int]

    def to_signature(self, selector: int) -> RecoveredSignature:
        # elapsed_seconds=0.0 for the same reason as the other tiers:
        # a memo hit does no inference work.
        return RecoveredSignature(
            selector=selector,
            param_types=tuple(self.param_types),
            language=self.language,
            elapsed_seconds=0.0,
            fired_rules=tuple(self.fired_rules),
            confidences=tuple(self.confidences),
        )

    def to_function_record(self, selector: int) -> FunctionRecord:
        """Re-materialize a function-memo record from this entry."""
        return FunctionRecord(
            selector=selector,
            param_types=tuple(self.param_types),
            language=self.language,
            fired_rules=tuple(self.fired_rules),
            confidences=tuple(self.confidences),
            rule_counts=dict(self.rule_counts),
            conflicts=dict(self.conflicts),
        )

    @classmethod
    def from_inference(
        cls,
        param_types,
        language: str,
        fired_rules,
        confidences,
        rule_counts: Dict[str, int],
        conflicts: Dict[str, int],
    ) -> "InferenceRecord":
        return cls(
            param_types=tuple(param_types),
            language=str(language),
            fired_rules=tuple(fired_rules),
            confidences=tuple(confidences),
            rule_counts={r: c for r, c in rule_counts.items() if c},
            conflicts={r: c for r, c in conflicts.items() if c},
        )

    def to_dict(self) -> dict:
        return {
            "param_types": list(self.param_types),
            "language": self.language,
            "fired_rules": list(self.fired_rules),
            "confidences": list(self.confidences),
            "rule_counts": {r: c for r, c in self.rule_counts.items() if c},
            "conflicts": {r: c for r, c in self.conflicts.items() if c},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "InferenceRecord":
        return cls(
            param_types=tuple(str(t) for t in data["param_types"]),
            language=str(data["language"]),
            fired_rules=tuple(str(r) for r in data["fired_rules"]),
            confidences=tuple(str(c) for c in data["confidences"]),
            rule_counts={
                str(r): int(c) for r, c in data.get("rule_counts", {}).items()
            },
            conflicts={
                str(r): int(c) for r, c in data.get("conflicts", {}).items()
            },
        )


class InferenceMemo:
    """Two-tier (in-process LRU + optional on-disk) inference memo.

    The layout mirrors :class:`FunctionMemo`: keys fold the options
    fingerprint (:meth:`key_for`), disk entries live under
    ``<dir>/inf-<fingerprint>/<key[:2]>/<key>.json``, writes are atomic
    (tmp + rename), and corrupt or stale entries read as misses.
    Metrics are published under the ``infmemo.*`` names so the function
    memo's ``memo.*`` series stay comparable across versions.
    """

    def __init__(
        self,
        options: Dict[str, object],
        directory: Optional[str] = None,
        capacity: int = 65536,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.fingerprint = options_fingerprint(dict(options))
        self.directory = directory
        self.capacity = capacity
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._memory: "OrderedDict[str, InferenceRecord]" = OrderedDict()
        self.hits_memory = 0
        self.hits_disk = 0
        self.misses = 0
        self.writes = 0

    # ------------------------------------------------------------------

    def key_for(self, events_digest: str) -> str:
        """The memo key for one canonical event-stream digest."""
        digest = hashlib.sha256()
        digest.update(self.fingerprint.encode("ascii"))
        digest.update(b"\x00")
        digest.update(events_digest.encode("ascii"))
        return digest.hexdigest()

    def _entry_path(self, key: str) -> str:
        assert self.directory is not None
        return os.path.join(
            self.directory, f"inf-{self.fingerprint}", key[:2], f"{key}.json"
        )

    def get(self, key: str) -> Optional[InferenceRecord]:
        record = self._memory.get(key)
        if record is not None:
            self._memory.move_to_end(key)
            self.hits_memory += 1
            self.metrics.counter("infmemo.hits", tier="memory").inc()
            return record
        if self.directory is not None:
            try:
                with open(self._entry_path(key), "r", encoding="utf-8") as f:
                    entry = json.load(f)
                if entry.get("schema") != SCHEMA_VERSION:
                    raise ValueError("stale inference-memo entry")
                record = InferenceRecord.from_dict(entry["record"])
            except (OSError, ValueError, KeyError, TypeError):
                record = None
            if record is not None:
                self._remember(key, record)
                self.hits_disk += 1
                self.metrics.counter("infmemo.hits", tier="disk").inc()
                return record
        self.misses += 1
        self.metrics.counter("infmemo.misses").inc()
        return None

    def put(self, key: str, record: InferenceRecord) -> None:
        self._remember(key, record)
        self.writes += 1
        self.metrics.counter("infmemo.writes").inc()
        if self.directory is None:
            return
        path = self._entry_path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        entry = {"schema": SCHEMA_VERSION, "record": record.to_dict()}
        fd, tmp_path = tempfile.mkstemp(
            dir=os.path.dirname(path), suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(entry, handle)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    def _remember(self, key: str, record: InferenceRecord) -> None:
        self._memory[key] = record
        self._memory.move_to_end(key)
        while len(self._memory) > self.capacity:
            self._memory.popitem(last=False)

    # ------------------------------------------------------------------

    @property
    def hits(self) -> int:
        return self.hits_memory + self.hits_disk

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
