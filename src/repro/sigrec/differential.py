"""Differential replay: the symbolic semantics on concrete inputs.

The unified semantics table (:mod:`repro.evm.semantics`) guarantees both
engines share one stack discipline, but the *meanings* still live in two
domains: ``ConcreteDomain`` computes with Python ints, ``SymbolicDomain``
with ``Expr`` trees and the fold tables of :mod:`repro.sigrec.expr`.  A
bug in either fold (a wrong SDIV sign rule, a bad SIGNEXTEND mask) would
silently skew type inference while every structural test keeps passing.

This module closes that gap: :class:`ReplayDomain` runs the *symbolic*
value domain over fully **concrete** calldata — environment reads,
storage and memory all produce constants, so every expression folds —
and :func:`symbolic_replay` drives it exactly like ``Interpreter.call``.
The folded terminal state (success/error, return data, storage writes)
must match the concrete interpreter bit for bit; any divergence is a
drift between the two value domains.

Two replay drivers exist: the default executes over the pre-decoded
instruction stream (:mod:`repro.evm.predecode`, shared with the
concrete interpreter and the TASE engine) and ``driver="legacy"`` keeps
the historical per-opcode dict dispatch.  The differential test suite
runs both over the same corpus and requires identical terminal states —
the decode layer itself is under test, not just the value domains.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.evm.keccak import keccak256
from repro.evm.predecode import decode as _decode_program
from repro.evm.semantics import (
    DEFAULT_BLOCK,
    DEFAULT_SELF_BALANCE,
    HALT,
    BlockContext,
    EVMException,
    ExecutionResult,
    InvalidInstruction,
    InvalidJump,
    Memory,
    OutOfGas,
    Reverted,
    StackOverflow,
    StackUnderflow,
    dispatch_table,
)
from repro.sigrec import expr as E
from repro.sigrec.engine import (
    SymbolicDomain,
    SymMemory,
    TASEEngine,
    TASEResult,
    _State,
    eval_const,
)


class UnfoldableValue(EVMException):
    """A value the replay needed concretely stayed symbolic.

    Reaching this is itself a drift: the concrete interpreter can always
    compute the value, so the symbolic domain failed to model it.
    """


def _int(e: E.Expr) -> int:
    value = eval_const(e)
    if value is None:
        raise UnfoldableValue(repr(e))
    return value


class ReplayDomain(SymbolicDomain):
    """The symbolic value domain with concrete inputs.

    Inherits every arithmetic/comparison/bitwise method from
    :class:`SymbolicDomain` — those are exactly the semantics under
    test — and overrides only the input edges (calldata, storage,
    memory, environment) to produce constants, and the output edges
    (halts, SSTORE, logs) to record a concrete
    :class:`~repro.evm.semantics.ExecutionResult`.
    """

    __slots__ = (
        "memory", "calldata", "storage", "return_buffer", "exec_result",
        "bytecode", "gas", "_env", "_calldata_size",
    )

    def __init__(
        self,
        engine: TASEEngine,
        calldata: bytes,
        storage: Dict[int, int],
        exec_result: ExecutionResult,
        caller: int,
        callvalue: int,
        address: int,
        gas: int,
        block: BlockContext,
        self_balance: int,
    ) -> None:
        super().__init__(engine, TASEResult(functions={}, selectors=[]), [])
        self.memory = Memory()
        self.calldata = calldata
        self._calldata_size = len(calldata)
        self.storage = storage
        self.return_buffer = b""
        self.exec_result = exec_result
        self.bytecode = engine.bytecode
        self.gas = gas
        self._env = {
            "ADDRESS": address,
            "ORIGIN": caller,
            "CALLER": caller,
            "CALLVALUE": callvalue,
            "GASPRICE": block.gasprice,
            "COINBASE": block.coinbase,
            "TIMESTAMP": block.timestamp,
            "NUMBER": block.number,
            "DIFFICULTY": block.difficulty,
            "GASLIMIT": block.gaslimit,
            "CHAINID": block.chainid,
            "SELFBALANCE": self_balance,
            "BASEFEE": block.basefee,
            "CODESIZE": len(engine.bytecode),
        }

    # -- input edges: everything is a constant -------------------------

    def sha3(self, ins, offset, length):
        data = self.memory.load(_int(offset), _int(length))
        return self.A.const(int.from_bytes(keccak256(data), "big"))

    def calldataload(self, ins, loc):
        base = _int(loc)
        chunk = self.calldata[base : base + 32]
        return self.A.const(int.from_bytes(chunk + b"\x00" * (32 - len(chunk)), "big"))

    def calldatasize(self, ins):
        return self.A.const(self._calldata_size)

    def calldatacopy(self, ins, dst, src, length):
        n = _int(length)
        base = _int(src)
        chunk = self.calldata[base : base + n]
        self.memory.store(_int(dst), chunk + b"\x00" * (n - len(chunk)))

    def codecopy(self, ins, dst, src, length):
        n = _int(length)
        base = _int(src)
        chunk = self.bytecode[base : base + n]
        self.memory.store(_int(dst), chunk + b"\x00" * (n - len(chunk)))

    def returndatacopy(self, ins, dst, src, length):
        n = _int(length)
        base = _int(src)
        chunk = self.return_buffer[base : base + n]
        self.memory.store(_int(dst), chunk + b"\x00" * (n - len(chunk)))

    def mload(self, ins, offset):
        return self.A.const(self.memory.load_word(_int(offset)))

    def mstore(self, ins, offset, value):
        self.memory.store_word(_int(offset), _int(value))

    def mstore8(self, ins, offset, value):
        self.memory.store(_int(offset), bytes([_int(value) & 0xFF]))

    def sload(self, ins, key):
        return self.A.const(self.storage.get(_int(key), 0))

    def sstore(self, ins, key, value):
        k, v = _int(key), _int(value)
        self.storage[k] = v
        self.exec_result.storage_writes[k] = v

    def env0(self, ins, name):
        if name == "PC":
            return self.A.const(ins.pc)
        if name == "MSIZE":
            return self.A.const(self.memory.size())
        if name == "GAS":
            return self.A.const(max(self.gas, 0))
        if name == "RETURNDATASIZE":
            return self.A.const(len(self.return_buffer))
        return self.A.const(self._env.get(name, 0))

    def env1(self, ins, name, arg):
        return self.A.const(0)

    # -- output edges --------------------------------------------------

    def log(self, ins, offset, length, topics):
        self.exec_result.logs.append(self.memory.load(_int(offset), _int(length)))

    def create(self, ins, value, offset, length, salt):
        return self.A.const(0)  # the stubbed concrete behaviour (no handler)

    def call_op(self, ins, kind, gas, to, value, in_off, in_size, out_off, out_size):
        self.return_buffer = b""
        return self.A.const(1)  # stubbed: callee succeeds, returns nothing

    # -- control flow: concrete, with concrete error semantics ---------

    def jump(self, ins, target):
        t = _int(target)
        if t not in self.engine._jumpdests:
            raise InvalidJump(f"jump to {t:#x}")
        return t

    def jumpi(self, ins, target, cond):
        if _int(cond):
            t = _int(target)
            if t not in self.engine._jumpdests:
                raise InvalidJump(f"jump to {t:#x}")
            return t
        return None

    def halt_stop(self, ins):
        self.exec_result.success = True
        return HALT

    def halt_return(self, ins, offset, length):
        self.exec_result.return_data = self.memory.load(_int(offset), _int(length))
        self.exec_result.success = True
        return HALT

    def halt_revert(self, ins, offset, length):
        raise Reverted(self.memory.load(_int(offset), _int(length)))

    def halt_invalid(self, ins):
        self.exec_result.invalid_hit = True
        raise InvalidInstruction(f"INVALID at {ins.pc:#x}")

    def halt_selfdestruct(self, ins, beneficiary):
        self.exec_result.success = True
        return HALT


def symbolic_replay(
    bytecode: bytes,
    calldata: bytes,
    caller: int = 0xCA11E4,
    callvalue: int = 0,
    address: int = 0xC0DE,
    storage: Optional[Dict[int, int]] = None,
    max_steps: int = 200_000,
    gas_limit: int = 10_000_000,
    block: Optional[BlockContext] = None,
    self_balance: Optional[int] = None,
    driver: str = "predecoded",
) -> ExecutionResult:
    """Run one message call through the symbolic value domain.

    Mirrors ``Interpreter.call`` (same defaults, same gas/step limits,
    same error taxonomy) but every value is an ``Expr`` folded on
    demand.  The returned :class:`ExecutionResult` is directly
    comparable to the concrete interpreter's.

    ``driver`` selects the step loop: ``"predecoded"`` (default) walks
    the shared pre-decoded instruction stream; ``"legacy"`` is the
    historical per-opcode dict driver, kept so the differential tests
    can assert both produce bit-identical terminal states.
    """
    if driver not in ("predecoded", "legacy"):
        raise ValueError(f"unknown replay driver: {driver!r}")
    engine = TASEEngine(bytecode, semantic_idioms=False)
    result = ExecutionResult(success=False)
    domain = ReplayDomain(
        engine,
        calldata,
        dict(storage or {}),
        result,
        caller=caller,
        callvalue=callvalue,
        address=address,
        gas=gas_limit,
        block=block if block is not None else DEFAULT_BLOCK,
        self_balance=(
            DEFAULT_SELF_BALANCE if self_balance is None else self_balance
        ),
    )
    domain.bind(
        _State(pc=0, stack=[], memory=SymMemory(), guards=(),
               fn=None, fork_visits={}, loop_visits={})
    )
    try:
        if driver == "predecoded":
            _drive_predecoded(bytecode, domain, result, max_steps)
        else:
            _drive_legacy(engine, domain, result, max_steps)
    except Reverted as exc:
        result.error = "revert"
        result.return_data = exc.data
    except EVMException as exc:
        result.error = type(exc).__name__

    result.gas_used = gas_limit - domain.gas
    return result


def _drive_predecoded(
    bytecode: bytes,
    domain: ReplayDomain,
    result: ExecutionResult,
    max_steps: int,
) -> None:
    """Step loop over the shared pre-decoded instruction stream.

    The decode (handler binding, gas costs, next-pcs) is computed once
    per bytecode and cached in :mod:`repro.evm.predecode`, so replaying
    a fuzz corpus pays disassembly once instead of once per input.
    """
    dispatch = _decode_program(bytecode, ReplayDomain).dispatch
    stack = domain.stack
    pc = 0
    while True:
        result.steps += 1
        if result.steps > max_steps:
            raise OutOfGas("step limit exceeded")
        entry = dispatch.get(pc)
        if entry is None:
            result.success = True
            break
        ins, handler, gas_cost, next_pc = entry
        result.pcs_executed.add(pc)
        domain.gas -= gas_cost
        if domain.gas < 0:
            raise OutOfGas("gas limit exceeded")
        try:
            control = handler(domain, ins)
        except IndexError:
            raise StackUnderflow() from None
        if control is None:
            pc = next_pc
            if len(stack) > 1024:
                raise StackOverflow()
        elif control is HALT:
            break
        else:
            pc = control


def _drive_legacy(
    engine: TASEEngine,
    domain: ReplayDomain,
    result: ExecutionResult,
    max_steps: int,
) -> None:
    """The historical per-opcode driver.

    Rebuilds the dispatch dict per call and resolves ``next_pc``
    through the instruction property each step.  Kept verbatim as the
    baseline the pre-decoded driver is asserted against, bit for bit,
    across the differential corpus.
    """
    table = dispatch_table(ReplayDomain)
    dispatch = {
        ins.pc: (ins, table[ins.op.code], ins.op.gas)
        for ins in engine._instructions
    }
    stack = domain.stack
    pc = 0
    while True:
        result.steps += 1
        if result.steps > max_steps:
            raise OutOfGas("step limit exceeded")
        entry = dispatch.get(pc)
        if entry is None:
            result.success = True
            break
        ins, handler, gas_cost = entry
        result.pcs_executed.add(pc)
        domain.gas -= gas_cost
        if domain.gas < 0:
            raise OutOfGas("gas limit exceeded")
        try:
            control = handler(domain, ins)
        except IndexError:
            raise StackUnderflow() from None
        if control is None:
            pc = ins.next_pc
            if len(stack) > 1024:
                raise StackOverflow()
        elif control is HALT:
            break
        else:
            pc = control
