"""The rule-generation pipeline of §3.1 (steps 1-4 automated).

The paper derives its 31 rules systematically:

1. *generate* smart contracts, each with one public/external function
   taking exactly one parameter, for every type / width / dimension;
2. *collect* the accessing pattern — the instruction sequence that
   accesses the parameter;
3. *extract common accessing patterns* across a family (e.g. uint8,
   uint16, ..., uint256), and *differential patterns* (instructions in
   an array's pattern but not in its item type's pattern);
4. *symbolically execute* the patterns to characterize them (our TASE
   engine provides this throughout).

Step 5 — summarizing rules — is the one manual step in the paper; the
summaries live in :mod:`repro.sigrec.rules`.  This module automates
steps 1-3 so that new parameter types or compiler idioms can be studied
the same way: see :meth:`PatternLearner.derive_report`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.abi.signature import FunctionSignature, Language, Visibility
from repro.abi.types import AbiType, ArrayType, IntType, UIntType, parse_type
from repro.compiler.contract import compile_contract
from repro.compiler.options import CodegenOptions
from repro.evm.disasm import disassemble


@dataclass(frozen=True)
class AccessingPattern:
    """Step 2's artifact: the instruction sequence accessing one param."""

    type_str: str
    visibility: Visibility
    opcodes: Tuple[str, ...]

    def __len__(self) -> int:
        return len(self.opcodes)


@dataclass
class FamilyPattern:
    """Step 3's artifact for one type family."""

    family: str
    members: List[str]
    common: Tuple[str, ...]  # common accessing pattern of the family
    differential: Tuple[str, ...]  # common minus the baseline's pattern


class PatternLearner:
    """Automates §3.1 steps 1-3 against the bundled codegen."""

    def __init__(self, options: Optional[CodegenOptions] = None) -> None:
        self.options = options or CodegenOptions(version="0.5.5")

    # -- steps 1 & 2 ----------------------------------------------------

    def pattern_for(
        self, abi_type: AbiType, visibility: Visibility = Visibility.PUBLIC
    ) -> AccessingPattern:
        """Compile a one-parameter function and slice out its body."""
        sig = FunctionSignature(
            "probe", (abi_type,), visibility, self.options.language
        )
        contract = compile_contract([sig], self.options)
        opcodes = self._body_opcodes(contract.bytecode)
        return AccessingPattern(abi_type.canonical(), visibility, opcodes)

    @staticmethod
    def _body_opcodes(bytecode: bytes) -> Tuple[str, ...]:
        """Instructions of the (single) function body.

        The body starts at the dispatcher's jump target — found from the
        ``PUSH4 <id> EQ PUSH <target> JUMPI`` sequence — and runs to its
        terminating STOP.
        """
        instructions = disassemble(bytecode)
        target = None
        for i, ins in enumerate(instructions):
            if (
                ins.op.is_push
                and ins.op.immediate_size == 4
                and i + 3 < len(instructions)
                and instructions[i + 1].op.name == "EQ"
                and instructions[i + 2].op.is_push
                and instructions[i + 3].op.name == "JUMPI"
            ):
                target = instructions[i + 2].operand
                break
        if target is None:
            raise ValueError("no dispatcher comparison found")
        body: List[str] = []
        collecting = False
        for ins in instructions:
            if ins.pc == target:
                collecting = True
            if not collecting:
                continue
            if ins.op.name == "STOP":
                break
            body.append(ins.op.name)
        return tuple(body)

    # -- step 3 ---------------------------------------------------------

    @staticmethod
    def common_subsequence(sequences: Sequence[Tuple[str, ...]]) -> Tuple[str, ...]:
        """The common accessing pattern: an LCS fold over the family."""
        if not sequences:
            return ()
        common = list(sequences[0])
        for seq in sequences[1:]:
            common = _lcs(common, list(seq))
        return tuple(common)

    @staticmethod
    def differential(
        pattern: Tuple[str, ...], baseline: Tuple[str, ...]
    ) -> Tuple[str, ...]:
        """Instructions in ``pattern`` beyond those in ``baseline``
        (the paper's "retaining the instructions in the common pattern
        but not in the accessing pattern of uint8")."""
        remaining = list(baseline)
        out: List[str] = []
        for op in pattern:
            if op in remaining:
                remaining.remove(op)
            else:
                out.append(op)
        return tuple(out)

    # -- the whole §3.1 recipe -------------------------------------------

    def derive_report(
        self,
        visibility: Visibility = Visibility.PUBLIC,
        max_static_size: int = 5,
    ) -> Dict[str, FamilyPattern]:
        """Run the §3.1 derivation across the families the paper lists."""
        report: Dict[str, FamilyPattern] = {}

        # Basic types of Solidity: common pattern of uint8..uint256.
        uint_members = [f"uint{w}" for w in (8, 16, 32, 64, 128, 256)]
        uint_patterns = [
            self.pattern_for(parse_type(t), visibility) for t in uint_members
        ]
        uint_common = self.common_subsequence([p.opcodes for p in uint_patterns])
        report["uint(M)"] = FamilyPattern(
            "uint(M)", uint_members, uint_common, ()
        )

        int_members = [f"int{w}" for w in (8, 32, 128, 256)]
        int_patterns = [
            self.pattern_for(parse_type(t), visibility) for t in int_members
        ]
        report["int(M)"] = FamilyPattern(
            "int(M)", int_members,
            self.common_subsequence([p.opcodes for p in int_patterns]), (),
        )

        baseline = self.pattern_for(parse_type("uint8"), visibility).opcodes

        # One-dimensional static arrays: uint8[1] .. uint8[N].
        static_members = [f"uint8[{n}]" for n in range(1, max_static_size + 1)]
        static_patterns = [
            self.pattern_for(parse_type(t), visibility) for t in static_members
        ]
        static_common = self.common_subsequence(
            [p.opcodes for p in static_patterns]
        )
        report["T[N]"] = FamilyPattern(
            "T[N]", static_members, static_common,
            self.differential(static_common, baseline),
        )

        # One-dimensional dynamic array: the uint8[] vs uint8 differential.
        dynamic = self.pattern_for(parse_type("uint8[]"), visibility).opcodes
        report["T[]"] = FamilyPattern(
            "T[]", ["uint8[]"], dynamic, self.differential(dynamic, baseline)
        )

        # bytes vs uint8: the offset/num/rounding machinery.
        blob = self.pattern_for(parse_type("bytes"), visibility).opcodes
        report["bytes"] = FamilyPattern(
            "bytes", ["bytes"], blob, self.differential(blob, baseline)
        )

        # Multidimensional static arrays.
        multi_members = [f"uint8[2][{n}]" for n in range(1, max_static_size + 1)]
        multi_patterns = [
            self.pattern_for(parse_type(t), visibility) for t in multi_members
        ]
        multi_common = self.common_subsequence([p.opcodes for p in multi_patterns])
        report["T[N1][N2]"] = FamilyPattern(
            "T[N1][N2]", multi_members, multi_common,
            self.differential(multi_common, baseline),
        )

        return report

    def derive_vyper_report(self) -> Dict[str, FamilyPattern]:
        """The §3.1 derivation for the Vyper families (§2.3.2).

        The learner must use a Vyper-configured ``CodegenOptions``;
        the differentials expose Vyper's signature trait — comparison
        clamps instead of masks.
        """
        baseline = self.pattern_for(parse_type("uint256")).opcodes

        report: Dict[str, FamilyPattern] = {}
        for family, members in [
            ("clamped basics", ["address", "bool", "int128", "fixed168x10"]),
            ("fixed-size list", ["int128[1]", "int128[2]", "int128[3]"]),
        ]:
            patterns = [
                self.pattern_for(parse_type(t)).opcodes for t in members
            ]
            common = self.common_subsequence(patterns)
            report[family] = FamilyPattern(
                family, members, common, self.differential(common, baseline)
            )

        from repro.abi.types import BoundedBytesType

        bounded = [
            self.pattern_for(BoundedBytesType(n)).opcodes for n in (8, 16, 32)
        ]
        common = self.common_subsequence(bounded)
        report["bytes[maxLen]"] = FamilyPattern(
            "bytes[maxLen]", ["bytes[8]", "bytes[16]", "bytes[32]"],
            common, self.differential(common, baseline),
        )
        return report


def _lcs(a: List[str], b: List[str]) -> List[str]:
    """Classic longest-common-subsequence (quadratic DP)."""
    rows = len(a) + 1
    cols = len(b) + 1
    table = [[0] * cols for _ in range(rows)]
    for i in range(1, rows):
        for j in range(1, cols):
            if a[i - 1] == b[j - 1]:
                table[i][j] = table[i - 1][j - 1] + 1
            else:
                table[i][j] = max(table[i - 1][j], table[i][j - 1])
    out: List[str] = []
    i, j = len(a), len(b)
    while i and j:
        if a[i - 1] == b[j - 1]:
            out.append(a[i - 1])
            i -= 1
            j -= 1
        elif table[i - 1][j] >= table[i][j - 1]:
            i -= 1
        else:
            j -= 1
    return out[::-1]
