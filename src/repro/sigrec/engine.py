"""The TASE symbolic execution engine.

Executes runtime bytecode with the call data as a symbol array,
exploring paths through the dispatcher into every public/external
function body, and recording the events the type-inference rules need
(paper §4.2):

* every CALLDATALOAD with the symbolic expression of its location and
  the branch guards active at that point (for control-dependence rules
  R2/R3);
* every CALLDATACOPY with destination/source/length expressions;
* every *use* of a parameter-tainted value in a type-revealing
  instruction (AND masks, SIGNEXTEND, double-ISZERO, BYTE, signed
  operations, arithmetic, comparisons against constants).

The opcode dispatch itself lives in the unified semantics table of
:mod:`repro.evm.semantics`, shared with the concrete interpreter:
:class:`SymbolicDomain` supplies the symbolic meaning of each operation
(``Expr`` trees, taint labels, event emission, JUMPI forking) and the
engine is the *driver* that walks worklist states over the table.

Design choices that mirror the paper:

* values read from the environment (CALLER, SLOAD, ...) are free
  symbols;
* a JUMP whose target is input-dependent stops the path (§4.2 notes
  only 5 mainnet contracts contain such jumps) — unless the static
  dataflow (:mod:`repro.analysis`) proved the site has exactly one
  valid target, in which case exploration continues there;
* comparison operators are *not* constant-folded at expression build
  time, so loop guards retain their structure (``lt(i, bound)``) and
  the engine evaluates them on demand — this is how TASE can count
  bound checks even for loops over compile-time-constant dimensions.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop, heappush
from typing import TYPE_CHECKING, Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.evm.predecode import decode as _decode_program

if TYPE_CHECKING:
    from repro.analysis.report import ContractAnalysis
from repro.evm.semantics import HALT, Domain
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.obs.profiler import HotLoopProfiler
from repro.sigrec import expr as E
from repro.sigrec.events import (
    CalldataCopyEvent,
    CalldataLoadEvent,
    FunctionEvents,
    Guard,
    UseEvent,
)

_WORD = 1 << 256
_MASK = _WORD - 1

_CMP_FOLD = {
    "lt": lambda a, b: 1 if a < b else 0,
    "gt": lambda a, b: 1 if a > b else 0,
    "slt": lambda a, b: 1 if _sgn(a) < _sgn(b) else 0,
    "sgt": lambda a, b: 1 if _sgn(a) > _sgn(b) else 0,
    "eq": lambda a, b: 1 if a == b else 0,
}


def _sgn(v: int) -> int:
    return v - _WORD if v >> 255 else v


def eval_const(e: E.Expr) -> Optional[int]:
    """Fully evaluate an expression when all leaves are constants.

    Comparisons are built unfolded (see module docstring), so the engine
    folds them here when it must take a concrete branch decision.

    The result is memoized on the (immutable) node: every JUMPI
    re-evaluates its condition, and loop guards grow as shared chains of
    ``add`` nodes, so without the memo the fold is re-run over the same
    subtrees once per unrolled iteration.  The memo lives in a lazy
    slot (unset until the first evaluation) so nodes that are never
    branched on pay nothing at construction.
    """
    try:
        return e._const_memo
    except AttributeError:
        pass
    result = _eval_const_uncached(e)
    object.__setattr__(e, "_const_memo", result)
    return result


def _eval_const_uncached(e: E.Expr) -> Optional[int]:
    if e.is_const:
        return e.value
    if e.op in ("env", "calldata", "calldatasize", "mem"):
        return None
    vals = []
    for arg in e.args:
        v = eval_const(arg)
        if v is None:
            return None
        vals.append(v)
    if e.op == "iszero":
        return 1 if vals[0] == 0 else 0
    if e.op == "not":
        return (~vals[0]) & _MASK
    if e.op in _CMP_FOLD:
        return _CMP_FOLD[e.op](vals[0], vals[1])
    fold = E._FOLD.get(e.op)
    if fold is not None and len(vals) == 2:
        return fold(vals[0], vals[1]) & _MASK
    return None


def _cmp(op: str, a: E.Expr, b: E.Expr) -> E.Expr:
    """Build an *unfolded* comparison so guards keep their structure."""
    return E.Expr(op, (a, b))


def _iszero(a: E.Expr) -> E.Expr:
    return E.Expr("iszero", (a,))


# ----------------------------------------------------------------------
# Symbolic memory
# ----------------------------------------------------------------------


@dataclass
class _Region:
    """One CALLDATACOPY'd span of memory."""

    region_id: int  # the pc of the copy: stable across loop iterations
    start: int
    length: Optional[int]  # None when the copy length is symbolic
    labels: frozenset
    seq: int = 0


class SymMemory:
    """Word-tracking symbolic memory with write ordering.

    Concrete-offset MSTOREs are kept exactly; CALLDATACOPY spans are
    kept as labeled regions so that later MLOADs produce
    parameter-tainted ``mem`` expressions (TASE step 3: marking memory
    regions with argument symbols).  Every write carries a sequence
    number and a load resolves to the *latest* writer covering its
    offset — a symbolic-length (open-ended) copy must not shadow words
    stored after it.
    """

    def __init__(self, arena: Optional[E.ExprArena] = None) -> None:
        self._words: Dict[int, Tuple[int, E.Expr]] = {}  # offset -> (seq, value)
        self._regions: List[_Region] = []
        self._fresh = 0
        self._seq = 0
        # Expression builder: the owning engine's arena, or the module
        # default for standalone construction (tests, replay).
        self._E = arena if arena is not None else E._DEFAULT_ARENA

    def clone(self) -> "SymMemory":
        new = SymMemory.__new__(SymMemory)
        new._words = dict(self._words)
        new._regions = list(self._regions)
        new._fresh = self._fresh
        new._seq = self._seq
        new._E = self._E
        return new

    def store(self, offset: E.Expr, value: E.Expr) -> None:
        if offset.is_const:
            self._seq += 1
            self._words[offset.value] = (self._seq, value)
        # Symbolic-offset stores are dropped: the rules never need them.

    def add_region(self, pc: int, dst: E.Expr, length: E.Expr, labels: frozenset) -> int:
        start = dst.value if dst.is_const else dst.const_term()
        const_len = length.value if length.is_const else None
        self._seq += 1
        self._regions.append(_Region(pc, start, const_len, labels, self._seq))
        return pc

    def load(self, offset: E.Expr) -> E.Expr:
        base = offset.value if offset.is_const else offset.const_term()
        word = self._words.get(base) if offset.is_const else None
        region = self._covering_region(base)
        if word is not None and (region is None or word[0] > region.seq):
            return word[1]
        if region is not None:
            return self._E.mem_read(region.region_id, offset, region.labels)
        self._fresh += 1
        return self._E.env(f"mem_{base}_{self._fresh}")

    def _covering_region(self, offset: int) -> Optional[_Region]:
        covering = None
        for region in self._regions:
            if region.length is None:
                # Symbolic-length copy: its true extent is unknown, so
                # claiming everything above ``start`` would shadow other
                # parameters' buffers.  Resolve only loads based at the
                # region's own start.
                if offset != region.start:
                    continue
            elif not (region.start <= offset < region.start + region.length):
                continue
            if covering is None or region.seq > covering.seq:
                covering = region
        return covering


# ----------------------------------------------------------------------
# Engine state
# ----------------------------------------------------------------------


@dataclass
class _State:
    pc: int
    stack: List[E.Expr]
    memory: SymMemory
    guards: Tuple[Guard, ...]
    fn: Optional[int]  # selector of the current function context
    fork_visits: Dict[int, int]
    loop_visits: Dict[int, int]
    steps: int = 0

    def fork(self, pc: int) -> "_State":
        return _State(
            pc=pc,
            stack=list(self.stack),
            memory=self.memory.clone(),
            guards=self.guards,
            fn=self.fn,
            fork_visits=dict(self.fork_visits),
            loop_visits=dict(self.loop_visits),
            steps=self.steps,
        )


@dataclass
class TASEResult:
    """Raw engine output: events grouped per function selector."""

    functions: Dict[int, FunctionEvents]
    selectors: List[int]
    paths_explored: int = 0
    hit_limits: bool = False
    #: Instructions stepped over the whole run (the pruning metric).
    total_steps: int = 0
    #: JUMPI forks the static analysis proved observationally silent
    #: and therefore suppressed (0 unless an analysis was supplied).
    pruned_forks: int = 0
    #: Symbolic JUMPI forks where both sides were explored (a state clone).
    forks_taken: int = 0
    #: Symbolic JUMPI visits where at least one side was dropped because
    #: its per-(site, side) branch budget was already spent.
    budget_exhaustions: int = 0
    #: ``hit_limits`` split by cause: the path cap was reached, so some
    #: worklist states were abandoned (selectors may be missing)...
    truncated_paths: bool = False
    #: ...or the per-run/per-path step ceilings cut exploration short.
    truncated_steps: bool = False
    #: Pending worklist states discarded without being explored when
    #: ``max_paths`` tripped (both at the scheduler pop and at the
    #: in-handler worklist clear).  0 on an untruncated run.
    abandoned_states: int = 0
    #: True when this result came from (or was merged out of) per-selector
    #: shard explorations rather than one monolithic worklist.
    sharded: bool = False
    #: Number of independent explorations merged into this result.
    shards: int = 0


def merge_tase_results(parts: List[TASEResult]) -> TASEResult:
    """Fold per-shard results into one contract-level result.

    Event maps are unioned (shards target disjoint selectors, so a
    collision keeps the first writer), tallies add, and the truncation
    flags OR — one truncated shard marks the whole recovery incomplete.
    """
    merged = TASEResult(functions={}, selectors=[], sharded=True,
                        shards=len(parts))
    for part in parts:
        for selector, events in part.functions.items():
            merged.functions.setdefault(selector, events)
        merged.paths_explored += part.paths_explored
        merged.total_steps += part.total_steps
        merged.pruned_forks += part.pruned_forks
        merged.forks_taken += part.forks_taken
        merged.budget_exhaustions += part.budget_exhaustions
        merged.abandoned_states += part.abandoned_states
        merged.hit_limits = merged.hit_limits or part.hit_limits
        merged.truncated_paths = merged.truncated_paths or part.truncated_paths
        merged.truncated_steps = merged.truncated_steps or part.truncated_steps
    merged.selectors = sorted(merged.functions.keys())
    return merged


# ----------------------------------------------------------------------
# Path scheduling
# ----------------------------------------------------------------------


class _Worklist:
    """Pending-path scheduler: priority order with a LIFO tiebreak.

    ``mode="lifo"`` is the historical stack discipline.
    ``mode="priority"`` pops by score first: dispatcher states (``fn is
    None`` — the paths that distinguish selectors) before function-body
    states, and among dispatcher states shallower guard depth before
    deeper; *within* a score, most-recently-pushed first — exactly the
    LIFO order.  Function-body states carry no depth term: their
    exploration order stays pure LIFO, which keeps each function's
    subtree contiguous and its event/budget interleaving identical to
    the historical engine (pruned/unpruned and sharded/monolithic
    equivalence depend on that).  Scores are integer tuples and the
    tiebreak sequence number is unique, so heap comparisons never reach
    the states themselves and the pop order is fully deterministic.

    The point is budget quality, not raw speed: when ``max_paths`` or
    the step ceilings trip, the states still queued — and therefore
    truncated — are the deepest, least selector-distinguishing ones.
    """

    __slots__ = ("_mode", "_items", "_seq")

    def __init__(self, mode: str) -> None:
        if mode not in ("priority", "lifo"):
            raise ValueError(f"unknown scheduler: {mode!r}")
        self._mode = mode
        self._items: List = []
        self._seq = 0

    def append(self, state: "_State") -> None:
        if self._mode == "lifo":
            self._items.append(state)
            return
        self._seq += 1
        heappush(
            self._items,
            (
                0 if state.fn is None else 1,
                len(state.guards) if state.fn is None else 0,
                -self._seq,
                state,
            ),
        )

    def pop(self) -> "_State":
        if self._mode == "lifo":
            return self._items.pop()
        return heappop(self._items)[-1]

    def clear(self) -> None:
        self._items.clear()

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)


# ----------------------------------------------------------------------
# The symbolic value domain
# ----------------------------------------------------------------------


class SymbolicDomain(Domain):
    """Expr-tree semantics over the shared opcode table.

    Values are taint-labelled :class:`~repro.sigrec.expr.Expr` nodes;
    type-revealing operations additionally emit the events the
    inference rules consume.  The domain is bound to one path state at
    a time (:meth:`bind`); JUMPI forks push cloned states onto the
    engine's worklist.
    """

    __slots__ = ("engine", "result", "worklist", "state", "events",
                 "semantic_idioms", "A")

    def __init__(self, engine: "TASEEngine", result: TASEResult,
                 worklist) -> None:
        super().__init__()
        self.engine = engine
        self.result = result
        self.worklist = worklist
        self.state: Optional[_State] = None
        self.events: Optional[FunctionEvents] = None
        self.semantic_idioms = engine.semantic_idioms
        # The engine's per-contract interning arena: every expression a
        # handler builds goes through it, so hot compounds are shared
        # (identity equality, shared eval_const memo) within one engine
        # and dropped with it.
        self.A = engine.arena

    def bind(self, state: _State) -> None:
        """Point the domain at ``state`` before stepping it."""
        self.state = state
        self.stack = state.stack
        self.events = self.engine._events(self.result, state.fn)

    # -- values --------------------------------------------------------

    def const(self, value):
        return self.A.const(value)

    def _make_arith(opname):
        """An unsigned-arithmetic method: taint-use events + interned node.

        Generated per opcode so the hot path is one frame — the old
        ``add -> _arith`` delegation paid a second call per executed
        arithmetic instruction.
        """

        def method(self, ins, a, b, _op=opname):
            events = self.events
            if events is not None:
                if _direct_taint(a):
                    events.add_use(UseEvent(ins.pc, "arith", a.labels))
                if _direct_taint(b):
                    events.add_use(UseEvent(ins.pc, "arith", b.labels))
            return self.A.binop(_op, a, b)

        method.__name__ = opname
        return method

    add = _make_arith("add")
    mul = _make_arith("mul")
    sub = _make_arith("sub")
    div = _make_arith("div")
    mod = _make_arith("mod")
    exp = _make_arith("exp")
    del _make_arith

    def _signed_op(self, ins, opname, a, b):
        events = self.events
        if events is not None and (a.labels or b.labels):
            events.add_use(UseEvent(ins.pc, "signed_op", a.labels | b.labels))
        return self.A.binop(opname, a, b)

    def sdiv(self, ins, a, b):
        return self._signed_op(ins, "sdiv", a, b)

    def smod(self, ins, a, b):
        return self._signed_op(ins, "smod", a, b)

    def sar(self, ins, shift, value):
        return self._signed_op(ins, "sar", shift, value)

    def signextend(self, ins, k, value):
        events = self.events
        if events is not None and k.is_const and _direct_taint(value):
            events.add_use(UseEvent(ins.pc, "signextend", value.labels, k.value))
        return self.A.binop("signextend", k, value)

    def lt(self, ins, a, b):
        # Record Vyper-style range checks: tainted value vs constant
        # bound.  Only ``lt(value, bound)`` with the loaded value on the
        # left counts: the mirrored ``lt(i, num)`` is a Solidity array
        # bound check on a loop counter, and ``gt(num, i)`` is the same
        # check in its inverted (obfuscated) form — neither is a clamp.
        events = self.events
        if events is not None and b.is_const and _direct_taint(a):
            events.add_use(UseEvent(ins.pc, "lt_bound", a.labels, b.value))
            events.vyper_markers += 1
        return self.A.cmp("lt", a, b)

    def gt(self, ins, a, b):
        return self.A.cmp("gt", a, b)

    def _signed_cmp(self, ins, opname, a, b):
        events = self.events
        if events is not None:
            if b.is_const and _direct_taint(a):
                # slt(value, lo) / sgt(value, hi): a Vyper clamp.
                events.add_use(
                    UseEvent(ins.pc, "signed_bound", a.labels, b.value)
                )
                events.vyper_markers += 1
            elif a.labels or b.labels:
                events.add_use(
                    UseEvent(ins.pc, "signed_op", a.labels | b.labels)
                )
        return self.A.cmp(opname, a, b)

    def slt(self, ins, a, b):
        return self._signed_cmp(ins, "slt", a, b)

    def sgt(self, ins, a, b):
        return self._signed_cmp(ins, "sgt", a, b)

    def eq(self, ins, a, b):
        events = self.events
        if events is not None and self.semantic_idioms:
            # EQ-with-zero is ISZERO in disguise: two chained
            # zero-comparisons normalize a bool exactly like a double
            # ISZERO (obfuscation-resistant R14).
            inner = _eq_zero_operand(a, b)
            if (
                inner is not None
                and inner.op == "eq"
                and _eq_zero_operand(*inner.args) is not None
                and _direct_taint(_eq_zero_operand(*inner.args))
            ):
                events.add_use(
                    UseEvent(
                        ins.pc, "bool_mask",
                        _eq_zero_operand(*inner.args).labels,
                    )
                )
        return self.A.cmp("eq", a, b)

    def iszero(self, ins, value):
        events = self.events
        if (
            events is not None
            and value.op == "iszero"
            and _direct_taint(value.args[0])
        ):
            events.add_use(UseEvent(ins.pc, "bool_mask", value.args[0].labels))
        return self.A.iszero_unfolded(value)

    def and_(self, ins, a, b):
        out = self.A.binop("and", a, b)
        events = self.events
        if events is not None:
            mask, operand = (a, b) if a.is_const else (b, a)
            if mask.is_const and operand.labels and _direct_taint(operand):
                events.add_use(
                    UseEvent(ins.pc, "and_mask", operand.labels, mask.value)
                )
        return out

    def or_(self, ins, a, b):
        return self.A.binop("or", a, b)

    def xor(self, ins, a, b):
        return self.A.binop("xor", a, b)

    def not_(self, ins, a):
        return self.A.bit_not(a)

    def byte(self, ins, index, value):
        events = self.events
        if events is not None and value.labels and _direct_taint(value):
            events.add_use(UseEvent(ins.pc, "byte", value.labels))
        return self.A.binop("byte", index, value)

    def _shift(self, ins, opname, shift, value):
        events = self.events
        if events is not None and shift.is_const and self.semantic_idioms:
            # A SHL/SHR (or SHR/SHL) pair with the same shift is an AND
            # mask in disguise (obfuscation-resistant R11/R12): record
            # the equivalent mask.
            k = shift.value
            inverse = "shr" if opname == "shl" else "shl"
            if (
                0 < k < 256
                and value.op == inverse
                and value.args[0] == shift
                and _direct_taint(value.args[1])
            ):
                if opname == "shr":
                    mask = (1 << (256 - k)) - 1  # keeps low bits
                else:
                    mask = ((1 << (256 - k)) - 1) << k  # high bits
                events.add_use(
                    UseEvent(ins.pc, "and_mask", value.args[1].labels, mask)
                )
        return self.A.binop(opname, shift, value)

    def shl(self, ins, shift, value):
        return self._shift(ins, "shl", shift, value)

    def shr(self, ins, shift, value):
        return self._shift(ins, "shr", shift, value)

    def addmod(self, ins, a, b, n):
        events = self.events
        if events is not None:
            if _direct_taint(a):
                events.add_use(UseEvent(ins.pc, "arith", a.labels))
            if _direct_taint(b):
                events.add_use(UseEvent(ins.pc, "arith", b.labels))
        return self.A.ternop("addmod", a, b, n)

    def mulmod(self, ins, a, b, n):
        events = self.events
        if events is not None:
            if _direct_taint(a):
                events.add_use(UseEvent(ins.pc, "arith", a.labels))
            if _direct_taint(b):
                events.add_use(UseEvent(ins.pc, "arith", b.labels))
        return self.A.ternop("mulmod", a, b, n)

    # -- data access ---------------------------------------------------

    def sha3(self, ins, offset, length):
        return self.engine._fresh_env("sha3")

    def calldataload(self, ins, loc):
        value = self.A.calldata(loc)
        events = self.events
        if events is not None:
            events.add_load(
                CalldataLoadEvent(ins.pc, loc, value, self.state.guards)
            )
        return value

    def calldatasize(self, ins):
        return self.A.calldatasize()

    def calldatacopy(self, ins, dst, src, length):
        labels = src.labels | length.labels
        region_id = self.state.memory.add_region(ins.pc, dst, length, labels)
        events = self.events
        if events is not None:
            events.add_copy(
                CalldataCopyEvent(
                    ins.pc, dst, src, length, region_id, self.state.guards
                )
            )

    def codecopy(self, ins, dst, src, length):
        pass

    def returndatacopy(self, ins, dst, src, length):
        pass

    def extcodecopy(self, ins, addr, dst, src, length):
        pass

    def mload(self, ins, offset):
        return self.state.memory.load(offset)

    def mstore(self, ins, offset, value):
        self.state.memory.store(offset, value)

    def mstore8(self, ins, offset, value):
        events = self.events
        if events is not None and _direct_taint(value):
            events.add_use(UseEvent(ins.pc, "mstore8", value.labels))

    def sload(self, ins, key):
        return self.engine._fresh_env("sload")

    def sstore(self, ins, key, value):
        pass

    # -- environment ---------------------------------------------------

    def env0(self, ins, name):
        return self.engine._fresh_env(name.lower())

    def env1(self, ins, name, arg):
        return self.engine._fresh_env(name.lower())

    # -- system --------------------------------------------------------

    def log(self, ins, offset, length, topics):
        pass

    def create(self, ins, value, offset, length, salt):
        return self.engine._fresh_env("create")

    def call_op(self, ins, kind, gas, to, value, in_off, in_size, out_off, out_size):
        return self.engine._fresh_env("callret")

    # -- control flow --------------------------------------------------

    def jump(self, ins, target):
        engine = self.engine
        value = eval_const(target)
        if value is None:
            # Input-dependent jump: normally the end of the path, but
            # when the static dataflow proved this site has exactly one
            # valid target, continue there instead of giving up.
            value = engine._unique_targets.get(ins.pc)
            if value is None:
                return HALT
        if value not in engine._jumpdests:
            return HALT
        if not engine._region_allows(self.state.fn, value):
            return HALT
        if not engine._note_loop(self.state, value):
            return HALT
        return value

    def jumpi(self, ins, target, cond):
        engine = self.engine
        state = self.state
        tvalue = eval_const(target)
        if tvalue is None:
            tvalue = engine._unique_targets.get(ins.pc)
            if tvalue is None:
                return HALT
        cvalue = eval_const(cond)
        if cvalue is not None:
            taken = bool(cvalue)
            state.guards = state.guards + (Guard(cond, taken, ins.pc),)
            if taken:
                if tvalue not in engine._jumpdests:
                    return HALT
                if not engine._note_loop(state, tvalue):
                    return HALT
                return tvalue
            return None
        # Symbolic condition: fork under a *global* per-(site, side)
        # budget.  Events are deduplicated per function, so re-exploring
        # the same branch side from many paths adds nothing; capping
        # globally keeps total work linear in program size instead of
        # exponential in loop count.
        selector = engine._match_selector(cond)
        pin = engine._pin
        if pin is not None and selector is not None and state.fn is None:
            # Sharded exploration: dispatcher selector comparisons are
            # decided concretely instead of forked, exactly as if the
            # constraint ``fid == target`` had been applied up front.
            # The guard history, stack, and memory therefore match the
            # monolithic walk's unique dispatcher path to the target
            # body bit for bit.
            target_sel, known = pin
            if selector == target_sel:
                if tvalue not in engine._jumpdests:
                    return HALT
                state.guards = state.guards + (Guard(cond, True, ins.pc),)
                state.fn = selector
                self.events = engine._events(self.result, selector)
                return tvalue
            if target_sel is not None or selector in known:
                # A sibling's comparison (or, in the residual walk, any
                # already-covered selector): take the not-matched side,
                # never entering the body — its own shard covers it.
                state.guards = state.guards + (Guard(cond, False, ins.pc),)
                return None
            # Residual walk, selector the static dispatcher never saw:
            # fall through to the ordinary fork logic so TASE can still
            # discover statically-invisible functions.
        budget = engine._branch_budget
        take_budget = budget.get((ins.pc, True), engine.fork_bound)
        fall_budget = budget.get((ins.pc, False), engine.fork_bound)
        if take_budget <= 0 or fall_budget <= 0:
            engine._budget_exhaustions += 1
        explore_taken = (
            take_budget > 0
            and tvalue in engine._jumpdests
            and engine._region_allows(state.fn, tvalue)
        )
        explore_fall = fall_budget > 0
        if explore_taken and selector is None and tvalue in engine._silent_halts:
            # The taken side provably halts without emitting any event
            # (and is not a dispatcher match, whose entry *is* the
            # observation), so exploring it is pure overhead.  Emulate
            # the unpruned run's accounting exactly: both budgets are
            # decremented as they would have been, and the fall-side
            # fork is *pushed* — not explored inline — so the worklist
            # holds the same states in the same push order as the
            # unpruned run and any scheduler (LIFO or priority) pops
            # them identically.  Only the silent block's own steps are
            # skipped: this state halts here instead of wandering into
            # the provably event-free block.
            budget[(ins.pc, True)] = take_budget - 1
            if not explore_fall:
                # The unpruned run would merely die inside the silent
                # block; skip those steps.
                return HALT
            engine._pruned_forks += 1
            budget[(ins.pc, False)] = fall_budget - 1
            fallthrough = state.fork(ins.next_pc)
            fallthrough.guards = state.guards + (Guard(cond, False, ins.pc),)
            self.worklist.append(fallthrough)
            return HALT
        if explore_fall:
            budget[(ins.pc, False)] = fall_budget - 1
            if explore_taken:
                engine._forks_taken += 1
                fallthrough = state.fork(ins.next_pc)
                fallthrough.guards = state.guards + (Guard(cond, False, ins.pc),)
                self.worklist.append(fallthrough)
            else:
                state.guards = state.guards + (Guard(cond, False, ins.pc),)
                return None
        if not explore_taken:
            return HALT
        budget[(ins.pc, True)] = take_budget - 1
        state.guards = state.guards + (Guard(cond, True, ins.pc),)
        if selector is not None:
            state.fn = selector
            self.events = engine._events(self.result, selector)
        return tvalue

    def halt_stop(self, ins):
        return HALT

    def halt_return(self, ins, offset, length):
        return HALT

    def halt_revert(self, ins, offset, length):
        return HALT

    def halt_invalid(self, ins):
        return HALT

    def halt_selfdestruct(self, ins, beneficiary):
        return HALT


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------


class TASEEngine:
    """Explores one contract and collects type-inference events.

    An optional :class:`~repro.analysis.report.ContractAnalysis` turns
    on static pruning: JUMPI forks into provably event-free halting
    blocks are suppressed (with path/budget accounting emulated so the
    result is bit-for-bit what the unpruned run produces), exploration
    inside a function is fenced to its statically reachable region, and
    symbolic JUMPs the dataflow resolved to a unique target continue
    instead of ending the path.
    """

    def __init__(
        self,
        bytecode: bytes,
        max_total_steps: int = 400_000,
        max_paths: int = 768,
        fork_bound: int = 3,
        loop_bound: int = 420,
        max_path_steps: int = 60_000,
        semantic_idioms: bool = True,
        step_hook: Optional[Callable] = None,
        analysis: Optional["ContractAnalysis"] = None,
        metrics: Optional[MetricsRegistry] = None,
        profiler: Optional[HotLoopProfiler] = None,
        scheduler: str = "priority",
        driver: str = "superblock",
    ) -> None:
        self.bytecode = bytecode
        # The registry only sees aggregate tallies published once per
        # ``run()`` — the hot loop keeps plain ints and never reads a
        # clock, so disabled observability costs one identity check.
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        # Hot-loop step attribution, superblock driver only: charged
        # once per block transition, so the per-step path never sees it
        # and the disabled cost is one ``is not None`` per superblock.
        self.profiler = profiler
        self.max_total_steps = max_total_steps
        self.max_paths = max_paths
        self.fork_bound = fork_bound
        self.loop_bound = loop_bound
        # Per-path instruction ceiling (a single runaway path — a
        # concrete loop the loop_bound does not catch — must not eat the
        # whole run budget).  Part of the cache/options fingerprint: a
        # different ceiling can observe different events.
        self.max_path_steps = max_path_steps
        # When False, only the literal AND/ISZERO-ISZERO idioms are
        # recognized (no shift-pair masks, no EQ-zero bools): the
        # ablation knob for the obfuscation experiment.
        self.semantic_idioms = semantic_idioms
        # step_hook(pc, stack) fires before each instruction, exactly
        # like the concrete interpreter's hook — the stack holds Exprs.
        self.step_hook = step_hook
        # Path scheduling ("priority" | "lifo") and step driver
        # ("superblock" | "legacy").  Both are part of the cache/options
        # fingerprint upstream: the driver is output-preserving by
        # construction, but the scheduler changes which paths survive a
        # budget trip, so results are only comparable per configuration.
        if scheduler not in ("priority", "lifo"):
            raise ValueError(f"unknown scheduler: {scheduler!r}")
        if driver not in ("superblock", "legacy"):
            raise ValueError(f"unknown driver: {driver!r}")
        self.scheduler = scheduler
        self.driver = driver
        # Per-contract expression interning arena: every Expr the
        # symbolic domain builds is hash-consed here and dies with the
        # engine (no process-global cache, no size cliff).
        self.arena = E.ExprArena()
        # One decode per (bytecode, domain class), shared across engines
        # and with the differential replay via the predecode cache.
        self._program = _decode_program(bytecode, SymbolicDomain)
        self._jumpdests = self._program.jumpdests
        self._env_counter = 0
        # Global symbolic-branch budgets, keyed by (jumpi pc, side).
        self._branch_budget: Dict[Tuple[int, bool], int] = {}
        # Static-analysis pruning oracles (all empty without an
        # analysis, so every check below degrades to a no-op).  An
        # incomplete dataflow fixpoint yields no oracles either: a
        # truncated analysis must never restrict exploration.
        self.analysis = analysis
        self._silent_halts: FrozenSet[int] = frozenset()
        self._unique_targets: Dict[int, int] = {}
        self._regions: Dict[int, FrozenSet[int]] = {}
        if analysis is not None and not analysis.cfg.incomplete:
            self._silent_halts = analysis.silent_halt_blocks
            self._unique_targets = analysis.unique_jump_targets
            self._regions = analysis.closed_regions
        self._paths = 0
        self._pruned_forks = 0
        self._forks_taken = 0
        self._budget_exhaustions = 0
        # Sharded exploration state: ``None`` for the monolithic walk,
        # else ``(target selector or None, frozenset of known
        # selectors)`` — see :meth:`run_selector` / :meth:`run_residual`.
        self._pin: Optional[Tuple[Optional[int], FrozenSet[int]]] = None
        # Legacy per-pc dispatch map, built on first use by the legacy
        # driver (the superblock driver reads the program directly).
        self._dispatch: Optional[Dict[int, tuple]] = None

    # ------------------------------------------------------------------

    @property
    def _instructions(self):
        """The full instruction stream (lazy — the superblock driver
        never needs it; the legacy driver and replay harness do)."""
        return self._program.instructions

    @property
    def _by_pc(self):
        """pc -> instruction (lazy — only diagnostics ever walk it)."""
        return self._program.by_pc

    def _reset(self) -> None:
        """Fresh mutable exploration state (budgets are per exploration)."""
        self._branch_budget = {}
        self._paths = 0
        self._pruned_forks = 0
        self._forks_taken = 0
        self._budget_exhaustions = 0
        self._pin = None

    def run(self) -> TASEResult:
        """The monolithic walk: one worklist seeded at pc 0."""
        self._reset()
        result = TASEResult(functions={}, selectors=[])
        self._explore(result)
        self._publish_metrics(result)
        return result

    def run_selector(self, selector: int, known: FrozenSet[int]) -> TASEResult:
        """One selector-sharded exploration.

        Walks from pc 0 with every dispatcher selector comparison
        decided concretely — ``selector``'s taken, every other known
        selector's not-taken — so the shard explores exactly the
        monolithic run's paths through this one function body, with the
        identical guard history, under its *own* path/step/fork budgets.
        The caller merges shards with :func:`merge_tase_results` and
        publishes metrics once on the merged result.
        """
        self._reset()
        self._pin = (selector, known)
        result = TASEResult(functions={}, selectors=[], sharded=True, shards=1)
        self._explore(result)
        return result

    def run_residual(self, known: FrozenSet[int]) -> TASEResult:
        """The dispatcher-spine walk that backstops the shards.

        Every known selector's comparison is pinned not-taken, so this
        walk covers what the per-selector shards do not: the fallback
        path and any function the static dispatcher analysis missed
        (whose comparison forks normally and is explored like the
        monolithic run would).
        """
        self._reset()
        self._pin = (None, known)
        result = TASEResult(functions={}, selectors=[], sharded=True, shards=1)
        self._explore(result)
        return result

    def _explore(self, result: TASEResult) -> None:
        """Drive the worklist until exhaustion or a budget trip."""
        initial = _State(
            pc=0, stack=[], memory=SymMemory(self.arena), guards=(),
            fn=None, fork_visits={}, loop_visits={},
        )
        worklist = _Worklist(self.scheduler)
        worklist.append(initial)
        domain = SymbolicDomain(self, result, worklist)
        if self.driver == "superblock":
            total_steps = self._drive_superblock(result, worklist, domain)
        else:
            total_steps = self._drive_legacy(result, worklist, domain)
        result.paths_explored += self._paths
        result.total_steps += total_steps
        result.pruned_forks += self._pruned_forks
        result.forks_taken += self._forks_taken
        result.budget_exhaustions += self._budget_exhaustions
        result.selectors = sorted(result.functions.keys())

    def _drive_superblock(
        self, result: TASEResult, worklist: _Worklist, domain: SymbolicDomain
    ) -> int:
        """Fused superblock driver over the pre-decoded program.

        Straight-line runs execute as one loop over pre-decoded
        ``(kind, arg, handler, instruction)`` pairs with the budget
        checks hoisted in front of the run; the pure stack-shuffle ops
        (PUSH/DUP/SWAP/POP — about half of all executed steps) are
        inlined on their kind tag instead of paying a handler call.
        Per-step accounting (total/path step counters, truncation
        points, the off-end probe, hook firing) is bit-for-bit the
        legacy driver's.
        """
        block_of = self._program.block
        hook = self.step_hook
        prof = self.profiler
        max_total = self.max_total_steps
        max_path = self.max_path_steps
        aconst = self.arena.const
        consts_get = self.arena._consts.get
        total = 0
        while worklist:
            state = worklist.pop()
            self._paths += 1
            if self._paths > self.max_paths:
                result.hit_limits = True
                result.truncated_paths = True
                result.abandoned_states += 1 + len(worklist)
                break
            domain.bind(state)
            stack = state.stack
            steps = state.steps
            # Profiler attribution unit: steps charged since ``mark``
            # belong to the superblock entered at ``bpc``.
            bpc = state.pc
            mark = total
            block = block_of(state.pc)
            while True:
                if block is None:
                    # No instruction at this pc: mirror the legacy
                    # dispatch miss — one counted probe, then the path
                    # ends as if running off the code.
                    total += 1
                    if total > max_total or steps > max_path:
                        result.hit_limits = True
                        result.truncated_steps = True
                    break
                k = block.n
                if k:
                    if hook is None and total + k <= max_total and steps + k - 1 <= max_path:
                        # Fused run: no trip is possible inside, so the
                        # checks hoist out of the loop entirely.
                        i = 0
                        try:
                            for kind, arg, handler, ins in block.pairs:
                                if kind == 1:
                                    node = consts_get(arg)
                                    stack.append(
                                        node if node is not None
                                        else aconst(arg)
                                    )
                                elif kind == 6:
                                    stack.append(
                                        arg(domain, ins,
                                            stack.pop(), stack.pop())
                                    )
                                elif kind == 2:
                                    stack.append(stack[-arg])
                                elif kind == 0:
                                    handler(domain, ins)
                                elif kind == 5:
                                    stack.append(
                                        arg(domain, ins, stack.pop())
                                    )
                                elif kind == 3:
                                    stack[-1], stack[-arg - 1] = (
                                        stack[-arg - 1], stack[-1],
                                    )
                                elif kind == 4:
                                    stack.pop()
                                # else kind == 7: JUMPDEST, no effect
                                i += 1
                        except IndexError:
                            # Stack underflow mid-run: charge exactly the
                            # attempted instructions, end the path.
                            total += i + 1
                            steps += i + 1
                            break
                        total += k
                        steps += k
                    else:
                        stop = False
                        for kind, arg, handler, ins in block.pairs:
                            total += 1
                            if total > max_total or steps > max_path:
                                result.hit_limits = True
                                result.truncated_steps = True
                                stop = True
                                break
                            if hook is not None:
                                hook(ins.pc, state.stack)
                            steps += 1
                            try:
                                handler(domain, ins)
                            except IndexError:
                                stop = True
                                break
                        if stop:
                            break
                ctrl = block.ctrl
                if ctrl is None:
                    # The instruction stream ends without a control op:
                    # the legacy driver's off-end probe.
                    total += 1
                    if total > max_total or steps > max_path:
                        result.hit_limits = True
                        result.truncated_steps = True
                    break
                total += 1
                if total > max_total or steps > max_path:
                    result.hit_limits = True
                    result.truncated_steps = True
                    break
                ctrl_ins = block.ctrl_ins
                if hook is not None:
                    hook(ctrl_ins.pc, state.stack)
                steps += 1
                # JUMPI forks clone the state: its step counter must be
                # current before the handler runs.
                state.steps = steps
                try:
                    control = ctrl(domain, ctrl_ins)
                except IndexError:
                    break  # stack underflow: malformed path
                if control is None:
                    next_pc = block.fall_pc
                elif control is HALT:
                    break
                else:
                    next_pc = control
                if prof is not None:
                    prof.record_block(bpc, total - mark)
                    mark = total
                    bpc = next_pc
                block = block_of(next_pc)
            state.steps = steps
            if prof is not None and total != mark:
                # The tail of the path: the steps charged after the last
                # block transition (HALT, truncation, underflow, probe).
                prof.record_block(bpc, total - mark)
        return total

    def _drive_legacy(
        self, result: TASEResult, worklist: _Worklist, domain: SymbolicDomain
    ) -> int:
        """The historical per-opcode driver: one dict lookup per step.

        Kept as the differential baseline for the superblock driver —
        equivalence tests run both and require identical results — and
        as the reference for the per-step accounting the fused driver
        must reproduce.
        """
        dispatch = self._dispatch
        if dispatch is None:
            dispatch = {
                ins.pc: (ins, handler)
                for ins, handler in zip(
                    self._program.instructions, self._program.handlers
                )
            }
            self._dispatch = dispatch
        hook = self.step_hook
        max_path_steps = self.max_path_steps
        total_steps = 0
        while worklist:
            state = worklist.pop()
            self._paths += 1
            if self._paths > self.max_paths:
                result.hit_limits = True
                result.truncated_paths = True
                result.abandoned_states += 1 + len(worklist)
                break
            domain.bind(state)
            while True:
                total_steps += 1
                if total_steps > self.max_total_steps or state.steps > max_path_steps:
                    result.hit_limits = True
                    result.truncated_steps = True
                    break
                entry = dispatch.get(state.pc)
                if entry is None:
                    break
                ins, handler = entry
                if hook is not None:
                    hook(state.pc, state.stack)
                state.steps += 1
                try:
                    control = handler(domain, ins)
                except IndexError:
                    break  # stack underflow: malformed path
                if control is None:
                    state.pc = ins.next_pc
                elif control is HALT:
                    break
                else:
                    state.pc = control
        return total_steps

    def publish_metrics(self, result: TASEResult) -> None:
        """Publish a (possibly merged) result's tallies to the registry."""
        self._publish_metrics(result)

    def _publish_metrics(self, result: TASEResult) -> None:
        """Fold one run's tallies into the registry (phase boundary)."""
        metrics = self.metrics
        if metrics is NULL_REGISTRY:
            return
        metrics.counter("tase.runs").inc()
        metrics.counter("tase.steps").inc(result.total_steps)
        metrics.counter("tase.paths").inc(result.paths_explored)
        metrics.counter("tase.forks").inc(result.forks_taken)
        metrics.counter("tase.forks_suppressed").inc(result.pruned_forks)
        metrics.counter("tase.budget_exhaustions").inc(result.budget_exhaustions)
        metrics.counter("tase.functions").inc(len(result.selectors))
        if result.sharded:
            metrics.counter("tase.sharded_runs").inc()
            metrics.counter("tase.shards").inc(result.shards)
        if result.truncated_paths:
            metrics.counter("tase.truncations", reason="max_paths").inc()
        if result.truncated_steps:
            metrics.counter("tase.truncations", reason="max_steps").inc()

    # ------------------------------------------------------------------

    def _events(self, result: TASEResult, fn: Optional[int]) -> Optional[FunctionEvents]:
        if fn is None:
            return None
        events = result.functions.get(fn)
        if events is None:
            events = FunctionEvents(selector=fn)
            result.functions[fn] = events
        return events

    def _fresh_env(self, stem: str) -> E.Expr:
        self._env_counter += 1
        return E.env(f"{stem}_{self._env_counter}")

    def _region_allows(self, fn: Optional[int], target: int) -> bool:
        """May a path inside function ``fn`` jump to block ``target``?

        Only closed per-selector regions restrict anything; outside the
        dispatcher (``fn is None``) or without a region for ``fn``,
        everything is allowed.  For a *closed* region this check can
        never reject a jump the symbolic executor would actually take —
        the dataflow's resolved targets over-approximate the concrete
        ones — so it changes nothing on well-analyzed code and only
        fences off exploration when the oracle and the bytecode
        disagree (e.g. a stale analysis for different code).
        """
        if fn is None:
            return True
        region = self._regions.get(fn)
        return region is None or target in region

    def _note_loop(self, state: _State, target: int) -> bool:
        """Bound concrete revisits of a jump target; False ends the path."""
        visits = state.loop_visits.get(target, 0)
        if visits >= self.loop_bound:
            return False
        state.loop_visits[target] = visits + 1
        return True

    @staticmethod
    def _match_selector(cond: E.Expr) -> Optional[int]:
        """Recognize ``eq(<selector const>, <function-id expr>)``."""
        if cond.op != "eq" or len(cond.args) != 2:
            return None
        a, b = cond.args
        if not a.is_const:
            a, b = b, a
        if not a.is_const or a.value > 0xFFFFFFFF:
            return None
        if TASEEngine._is_fid_expr(b):
            return a.value
        return None

    @staticmethod
    def _is_fid_expr(e: E.Expr) -> bool:
        """Does ``e`` compute the function id from calldata[0..4]?"""
        if e.op == "and" and e.args[0].is_const and e.args[0].value == 0xFFFFFFFF:
            return TASEEngine._is_fid_expr(e.args[1])
        if e.op == "div":
            value, divisor = e.args
            return (
                divisor.is_const
                and divisor.value == 1 << 224
                and _is_calldata0(value)
            )
        if e.op == "shr":
            shift, value = e.args
            return shift.is_const and shift.value == 224 and _is_calldata0(value)
        return False


def _is_calldata0(e: E.Expr) -> bool:
    return e.op == "calldata" and e.args[0].is_const and e.args[0].value == 0


def _eq_zero_operand(a: E.Expr, b: E.Expr):
    """For eq(0, x) or eq(x, 0), return x; else None."""
    if a.is_const and a.value == 0:
        return b
    if b.is_const and b.value == 0:
        return a
    return None


def _direct_taint(e: E.Expr) -> bool:
    """Is ``e`` a direct (possibly lightly wrapped) parameter load?

    Usage rules fire on the loaded value itself or a masked version of
    it — not on location arithmetic that merely *contains* a load.
    Shift-pair masking (the AND-in-disguise obfuscation) also counts
    as light wrapping.
    """
    if e.op in ("calldata", "mem"):
        return True
    if e.op in ("and", "signextend") and len(e.args) == 2:
        return _direct_taint(e.args[1]) or _direct_taint(e.args[0])
    if e.op in ("shl", "shr") and len(e.args) == 2 and e.args[0].is_const:
        return _direct_taint(e.args[1])
    if e.op == "iszero":
        return _direct_taint(e.args[0])
    return False
