"""The TASE symbolic execution engine.

Executes runtime bytecode with the call data as a symbol array,
exploring paths through the dispatcher into every public/external
function body, and recording the events the type-inference rules need
(paper §4.2):

* every CALLDATALOAD with the symbolic expression of its location and
  the branch guards active at that point (for control-dependence rules
  R2/R3);
* every CALLDATACOPY with destination/source/length expressions;
* every *use* of a parameter-tainted value in a type-revealing
  instruction (AND masks, SIGNEXTEND, double-ISZERO, BYTE, signed
  operations, arithmetic, comparisons against constants).

Design choices that mirror the paper:

* values read from the environment (CALLER, SLOAD, ...) are free
  symbols;
* a JUMP whose target is input-dependent stops the path (§4.2 notes
  only 5 mainnet contracts contain such jumps);
* comparison operators are *not* constant-folded at expression build
  time, so loop guards retain their structure (``lt(i, bound)``) and
  the engine evaluates them on demand — this is how TASE can count
  bound checks even for loops over compile-time-constant dimensions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.evm.disasm import Instruction, disassemble, instruction_index, jumpdests
from repro.sigrec import expr as E
from repro.sigrec.events import (
    CalldataCopyEvent,
    CalldataLoadEvent,
    FunctionEvents,
    Guard,
    UseEvent,
)

_WORD = 1 << 256
_MASK = _WORD - 1

_ARITH_OPS = frozenset(["ADD", "SUB", "MUL", "DIV", "MOD", "EXP", "ADDMOD", "MULMOD"])

_CMP_FOLD = {
    "lt": lambda a, b: 1 if a < b else 0,
    "gt": lambda a, b: 1 if a > b else 0,
    "slt": lambda a, b: 1 if _sgn(a) < _sgn(b) else 0,
    "sgt": lambda a, b: 1 if _sgn(a) > _sgn(b) else 0,
    "eq": lambda a, b: 1 if a == b else 0,
}


def _sgn(v: int) -> int:
    return v - _WORD if v >> 255 else v


def eval_const(e: E.Expr) -> Optional[int]:
    """Fully evaluate an expression when all leaves are constants.

    Comparisons are built unfolded (see module docstring), so the engine
    folds them here when it must take a concrete branch decision.

    The result is memoized on the (immutable) node: every JUMPI
    re-evaluates its condition, and loop guards grow as shared chains of
    ``add`` nodes, so without the memo the fold is re-run over the same
    subtrees once per unrolled iteration.
    """
    memo = e._const_memo
    if memo is not E._UNEVALUATED:
        return memo
    result = _eval_const_uncached(e)
    object.__setattr__(e, "_const_memo", result)
    return result


def _eval_const_uncached(e: E.Expr) -> Optional[int]:
    if e.is_const:
        return e.value
    if e.op in ("env", "calldata", "calldatasize", "mem"):
        return None
    vals = []
    for arg in e.args:
        v = eval_const(arg)
        if v is None:
            return None
        vals.append(v)
    if e.op == "iszero":
        return 1 if vals[0] == 0 else 0
    if e.op == "not":
        return (~vals[0]) & _MASK
    if e.op in _CMP_FOLD:
        return _CMP_FOLD[e.op](vals[0], vals[1])
    fold = E._FOLD.get(e.op)
    if fold is not None and len(vals) == 2:
        return fold(vals[0], vals[1]) & _MASK
    return None


def _cmp(op: str, a: E.Expr, b: E.Expr) -> E.Expr:
    """Build an *unfolded* comparison so guards keep their structure."""
    return E.Expr(op, (a, b))


def _iszero(a: E.Expr) -> E.Expr:
    return E.Expr("iszero", (a,))


# ----------------------------------------------------------------------
# Symbolic memory
# ----------------------------------------------------------------------


@dataclass
class _Region:
    """One CALLDATACOPY'd span of memory."""

    region_id: int  # the pc of the copy: stable across loop iterations
    start: int
    length: Optional[int]  # None when the copy length is symbolic
    labels: frozenset
    seq: int = 0


class SymMemory:
    """Word-tracking symbolic memory with write ordering.

    Concrete-offset MSTOREs are kept exactly; CALLDATACOPY spans are
    kept as labeled regions so that later MLOADs produce
    parameter-tainted ``mem`` expressions (TASE step 3: marking memory
    regions with argument symbols).  Every write carries a sequence
    number and a load resolves to the *latest* writer covering its
    offset — a symbolic-length (open-ended) copy must not shadow words
    stored after it.
    """

    def __init__(self) -> None:
        self._words: Dict[int, Tuple[int, E.Expr]] = {}  # offset -> (seq, value)
        self._regions: List[_Region] = []
        self._fresh = 0
        self._seq = 0

    def clone(self) -> "SymMemory":
        new = SymMemory.__new__(SymMemory)
        new._words = dict(self._words)
        new._regions = list(self._regions)
        new._fresh = self._fresh
        new._seq = self._seq
        return new

    def store(self, offset: E.Expr, value: E.Expr) -> None:
        if offset.is_const:
            self._seq += 1
            self._words[offset.value] = (self._seq, value)
        # Symbolic-offset stores are dropped: the rules never need them.

    def add_region(self, pc: int, dst: E.Expr, length: E.Expr, labels: frozenset) -> int:
        start = dst.value if dst.is_const else dst.const_term()
        const_len = length.value if length.is_const else None
        self._seq += 1
        self._regions.append(_Region(pc, start, const_len, labels, self._seq))
        return pc

    def load(self, offset: E.Expr) -> E.Expr:
        base = offset.value if offset.is_const else offset.const_term()
        word = self._words.get(base) if offset.is_const else None
        region = self._covering_region(base)
        if word is not None and (region is None or word[0] > region.seq):
            return word[1]
        if region is not None:
            return E.mem_read(region.region_id, offset, region.labels)
        self._fresh += 1
        return E.env(f"mem_{base}_{self._fresh}")

    def _covering_region(self, offset: int) -> Optional[_Region]:
        covering = None
        for region in self._regions:
            if region.length is None:
                # Symbolic-length copy: its true extent is unknown, so
                # claiming everything above ``start`` would shadow other
                # parameters' buffers.  Resolve only loads based at the
                # region's own start.
                if offset != region.start:
                    continue
            elif not (region.start <= offset < region.start + region.length):
                continue
            if covering is None or region.seq > covering.seq:
                covering = region
        return covering


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------


@dataclass
class _State:
    pc: int
    stack: List[E.Expr]
    memory: SymMemory
    guards: Tuple[Guard, ...]
    fn: Optional[int]  # selector of the current function context
    fork_visits: Dict[int, int]
    loop_visits: Dict[int, int]
    steps: int = 0

    def fork(self, pc: int) -> "_State":
        return _State(
            pc=pc,
            stack=list(self.stack),
            memory=self.memory.clone(),
            guards=self.guards,
            fn=self.fn,
            fork_visits=dict(self.fork_visits),
            loop_visits=dict(self.loop_visits),
            steps=self.steps,
        )


@dataclass
class TASEResult:
    """Raw engine output: events grouped per function selector."""

    functions: Dict[int, FunctionEvents]
    selectors: List[int]
    paths_explored: int = 0
    hit_limits: bool = False


class TASEEngine:
    """Explores one contract and collects type-inference events."""

    def __init__(
        self,
        bytecode: bytes,
        max_total_steps: int = 400_000,
        max_paths: int = 768,
        fork_bound: int = 3,
        loop_bound: int = 420,
        semantic_idioms: bool = True,
    ) -> None:
        self.bytecode = bytecode
        self.max_total_steps = max_total_steps
        self.max_paths = max_paths
        self.fork_bound = fork_bound
        self.loop_bound = loop_bound
        # When False, only the literal AND/ISZERO-ISZERO idioms are
        # recognized (no shift-pair masks, no EQ-zero bools): the
        # ablation knob for the obfuscation experiment.
        self.semantic_idioms = semantic_idioms
        self._instructions = disassemble(bytecode)
        self._by_pc = instruction_index(self._instructions)
        self._jumpdests = jumpdests(self._instructions)
        self._env_counter = 0
        # Global symbolic-branch budgets, keyed by (jumpi pc, side).
        self._branch_budget: Dict[Tuple[int, bool], int] = {}

    # ------------------------------------------------------------------

    def run(self) -> TASEResult:
        self._branch_budget = {}
        result = TASEResult(functions={}, selectors=[])
        initial = _State(
            pc=0, stack=[], memory=SymMemory(), guards=(),
            fn=None, fork_visits={}, loop_visits={},
        )
        worklist = [initial]
        total_steps = 0
        paths = 0
        while worklist:
            state = worklist.pop()
            paths += 1
            if paths > self.max_paths:
                result.hit_limits = True
                break
            while True:
                total_steps += 1
                if total_steps > self.max_total_steps or state.steps > 60_000:
                    result.hit_limits = True
                    break
                ins = self._by_pc.get(state.pc)
                if ins is None:
                    break
                advance = self._step(ins, state, worklist, result)
                if not advance:
                    break
        result.paths_explored = paths
        result.selectors = sorted(result.functions.keys())
        return result

    # ------------------------------------------------------------------

    def _events(self, result: TASEResult, fn: Optional[int]) -> Optional[FunctionEvents]:
        if fn is None:
            return None
        events = result.functions.get(fn)
        if events is None:
            events = FunctionEvents(selector=fn)
            result.functions[fn] = events
        return events

    def _fresh_env(self, stem: str) -> E.Expr:
        self._env_counter += 1
        return E.env(f"{stem}_{self._env_counter}")

    @staticmethod
    def _match_selector(cond: E.Expr) -> Optional[int]:
        """Recognize ``eq(<selector const>, <function-id expr>)``."""
        if cond.op != "eq" or len(cond.args) != 2:
            return None
        a, b = cond.args
        if not a.is_const:
            a, b = b, a
        if not a.is_const or a.value > 0xFFFFFFFF:
            return None
        if TASEEngine._is_fid_expr(b):
            return a.value
        return None

    @staticmethod
    def _is_fid_expr(e: E.Expr) -> bool:
        """Does ``e`` compute the function id from calldata[0..4]?"""
        if e.op == "and" and e.args[0].is_const and e.args[0].value == 0xFFFFFFFF:
            return TASEEngine._is_fid_expr(e.args[1])
        if e.op == "div":
            value, divisor = e.args
            return (
                divisor.is_const
                and divisor.value == 1 << 224
                and _is_calldata0(value)
            )
        if e.op == "shr":
            shift, value = e.args
            return shift.is_const and shift.value == 224 and _is_calldata0(value)
        return False

    # ------------------------------------------------------------------

    def _step(
        self,
        ins: Instruction,
        state: _State,
        worklist: List[_State],
        result: TASEResult,
    ) -> bool:
        """Execute one instruction; return False to end the path."""
        op = ins.op
        name = op.name
        stack = state.stack
        state.steps += 1

        def pop() -> E.Expr:
            if not stack:
                raise IndexError
            return stack.pop()

        def push(e: E.Expr) -> None:
            stack.append(e)

        events = self._events(result, state.fn)

        try:
            if op.is_push:
                push(E.const(ins.operand or 0))
            elif op.is_dup:
                n = op.code - 0x7F
                push(stack[-n])
            elif op.is_swap:
                n = op.code - 0x8F
                stack[-1], stack[-n - 1] = stack[-n - 1], stack[-1]
            elif name == "POP":
                pop()
            elif name == "JUMPDEST":
                pass
            elif name == "CALLDATALOAD":
                loc = pop()
                value = E.calldata(loc)
                push(value)
                if events is not None:
                    events.add_load(
                        CalldataLoadEvent(ins.pc, loc, value, state.guards)
                    )
            elif name == "CALLDATASIZE":
                push(E.calldatasize())
            elif name == "CALLDATACOPY":
                dst, src, length = pop(), pop(), pop()
                labels = src.labels | length.labels
                region_id = state.memory.add_region(ins.pc, dst, length, labels)
                if events is not None:
                    events.add_copy(
                        CalldataCopyEvent(
                            ins.pc, dst, src, length, region_id, state.guards
                        )
                    )
            elif name == "MLOAD":
                push(state.memory.load(pop()))
            elif name == "MSTORE":
                offset, value = pop(), pop()
                state.memory.store(offset, value)
            elif name == "MSTORE8":
                offset, value = pop(), pop()
                if events is not None and _direct_taint(value):
                    events.add_use(UseEvent(ins.pc, "mstore8", value.labels))
            elif name == "ISZERO":
                value = pop()
                if (
                    events is not None
                    and value.op == "iszero"
                    and _direct_taint(value.args[0])
                ):
                    events.add_use(
                        UseEvent(ins.pc, "bool_mask", value.args[0].labels)
                    )
                push(_iszero(value))
            elif name == "AND":
                a, b = pop(), pop()
                out = E.binop("and", a, b)
                if events is not None:
                    mask, operand = (a, b) if a.is_const else (b, a)
                    if mask.is_const and operand.labels and _direct_taint(operand):
                        events.add_use(
                            UseEvent(ins.pc, "and_mask", operand.labels, mask.value)
                        )
                push(out)
            elif name == "SIGNEXTEND":
                k, value = pop(), pop()
                if events is not None and k.is_const and _direct_taint(value):
                    events.add_use(
                        UseEvent(ins.pc, "signextend", value.labels, k.value)
                    )
                push(E.binop("signextend", k, value))
            elif name == "BYTE":
                index, value = pop(), pop()
                if events is not None and value.labels and _direct_taint(value):
                    events.add_use(UseEvent(ins.pc, "byte", value.labels))
                push(E.binop("byte", index, value))
            elif name in ("LT", "GT"):
                a, b = pop(), pop()
                out = _cmp(name.lower(), a, b)
                if events is not None:
                    self._record_bound(events, ins.pc, name.lower(), a, b)
                push(out)
            elif name in ("SLT", "SGT"):
                a, b = pop(), pop()
                out = _cmp(name.lower(), a, b)
                if events is not None:
                    if b.is_const and _direct_taint(a):
                        # slt(value, lo) / sgt(value, hi): a Vyper clamp.
                        events.add_use(
                            UseEvent(ins.pc, "signed_bound", a.labels, b.value)
                        )
                        events.vyper_markers += 1
                    elif a.labels or b.labels:
                        events.add_use(
                            UseEvent(ins.pc, "signed_op", a.labels | b.labels)
                        )
                push(out)
            elif name == "EQ":
                a, b = pop(), pop()
                if events is not None and self.semantic_idioms:
                    # EQ-with-zero is ISZERO in disguise: two chained
                    # zero-comparisons normalize a bool exactly like a
                    # double ISZERO (obfuscation-resistant R14).
                    inner = _eq_zero_operand(a, b)
                    if (
                        inner is not None
                        and inner.op == "eq"
                        and _eq_zero_operand(*inner.args) is not None
                        and _direct_taint(_eq_zero_operand(*inner.args))
                    ):
                        events.add_use(
                            UseEvent(
                                ins.pc, "bool_mask",
                                _eq_zero_operand(*inner.args).labels,
                            )
                        )
                push(_cmp("eq", a, b))
            elif name in ("SDIV", "SMOD", "SAR"):
                a, b = pop(), pop()
                if events is not None and (a.labels or b.labels):
                    events.add_use(UseEvent(ins.pc, "signed_op", a.labels | b.labels))
                push(E.binop(name.lower(), a, b))
            elif name in _ARITH_OPS:
                if name in ("ADDMOD", "MULMOD"):
                    a, b, n = pop(), pop(), pop()
                    out = E.ternop(name.lower(), a, b, n)
                    operands = (a, b)
                else:
                    a, b = pop(), pop()
                    out = E.binop(name.lower(), a, b)
                    operands = (a, b)
                if events is not None:
                    for operand in operands:
                        if _direct_taint(operand):
                            events.add_use(
                                UseEvent(ins.pc, "arith", operand.labels)
                            )
                push(out)
            elif name in ("OR", "XOR"):
                push(E.binop(name.lower(), pop(), pop()))
            elif name in ("SHL", "SHR"):
                shift, value = pop(), pop()
                if events is not None and shift.is_const and self.semantic_idioms:
                    # A SHL/SHR (or SHR/SHL) pair with the same shift is
                    # an AND mask in disguise (obfuscation-resistant
                    # R11/R12): record the equivalent mask.
                    k = shift.value
                    inverse = "shr" if name == "SHL" else "shl"
                    if (
                        0 < k < 256
                        and value.op == inverse
                        and value.args[0] == shift
                        and _direct_taint(value.args[1])
                    ):
                        if name == "SHR":
                            mask = (1 << (256 - k)) - 1  # keeps low bits
                        else:
                            mask = ((1 << (256 - k)) - 1) << k  # high bits
                        events.add_use(
                            UseEvent(
                                ins.pc, "and_mask",
                                value.args[1].labels, mask,
                            )
                        )
                push(E.binop(name.lower(), shift, value))
            elif name == "NOT":
                push(E.bit_not(pop()))
            elif name == "SHA3":
                pop(), pop()
                push(self._fresh_env("sha3"))
            elif name in ("ADDRESS", "ORIGIN", "CALLER", "CALLVALUE", "GASPRICE",
                          "COINBASE", "TIMESTAMP", "NUMBER", "DIFFICULTY",
                          "GASLIMIT", "CHAINID", "SELFBALANCE", "BASEFEE",
                          "MSIZE", "GAS", "PC", "RETURNDATASIZE", "CODESIZE"):
                push(self._fresh_env(name.lower()))
            elif name in ("BALANCE", "EXTCODESIZE", "EXTCODEHASH", "BLOCKHASH"):
                pop()
                push(self._fresh_env(name.lower()))
            elif name == "SLOAD":
                pop()
                push(self._fresh_env("sload"))
            elif name == "SSTORE":
                pop(), pop()
            elif name in ("CODECOPY", "RETURNDATACOPY"):
                pop(), pop(), pop()
            elif name == "EXTCODECOPY":
                pop(), pop(), pop(), pop()
            elif name.startswith("LOG"):
                for _ in range(op.pops):
                    pop()
            elif name in ("CREATE", "CREATE2"):
                for _ in range(op.pops):
                    pop()
                push(self._fresh_env("create"))
            elif name in ("CALL", "CALLCODE", "DELEGATECALL", "STATICCALL"):
                for _ in range(op.pops):
                    pop()
                push(self._fresh_env("callret"))
            elif name == "JUMP":
                target = pop()
                value = eval_const(target)
                if value is None or value not in self._jumpdests:
                    return False  # input-dependent jump: stop the path
                if not self._note_loop(state, value):
                    return False
                state.pc = value
                return True
            elif name == "JUMPI":
                target, cond = pop(), pop()
                tvalue = eval_const(target)
                if tvalue is None:
                    return False
                cvalue = eval_const(cond)
                selector = self._match_selector(cond)
                if cvalue is not None:
                    taken = bool(cvalue)
                    state.guards = state.guards + (Guard(cond, taken, ins.pc),)
                    if taken:
                        if tvalue not in self._jumpdests:
                            return False
                        if not self._note_loop(state, tvalue):
                            return False
                        state.pc = tvalue
                        return True
                    state.pc = ins.next_pc
                    return True
                # Symbolic condition: fork under a *global* per-(site,
                # side) budget.  Events are deduplicated per function, so
                # re-exploring the same branch side from many paths adds
                # nothing; capping globally keeps total work linear in
                # program size instead of exponential in loop count.
                take_budget = self._branch_budget.get((ins.pc, True), self.fork_bound)
                fall_budget = self._branch_budget.get((ins.pc, False), self.fork_bound)
                explore_taken = take_budget > 0 and tvalue in self._jumpdests
                explore_fall = fall_budget > 0
                if explore_fall:
                    self._branch_budget[(ins.pc, False)] = fall_budget - 1
                    if explore_taken:
                        fallthrough = state.fork(ins.next_pc)
                        fallthrough.guards = state.guards + (
                            Guard(cond, False, ins.pc),
                        )
                        worklist.append(fallthrough)
                    else:
                        state.guards = state.guards + (Guard(cond, False, ins.pc),)
                        state.pc = ins.next_pc
                        return True
                if not explore_taken:
                    return False
                self._branch_budget[(ins.pc, True)] = take_budget - 1
                state.guards = state.guards + (Guard(cond, True, ins.pc),)
                if selector is not None:
                    state.fn = selector
                    self._events(result, selector)  # materialize entry
                state.pc = tvalue
                return True
            elif name in ("STOP", "RETURN", "REVERT", "INVALID", "SELFDESTRUCT",
                          "UNKNOWN"):
                return False
            else:  # pragma: no cover - dispatch covers the table
                for _ in range(op.pops):
                    pop()
                for _ in range(op.pushes):
                    push(self._fresh_env(name.lower()))
        except IndexError:
            return False  # stack underflow: malformed path

        state.pc = ins.next_pc
        return True

    def _note_loop(self, state: _State, target: int) -> bool:
        """Bound concrete revisits of a jump target; False ends the path."""
        visits = state.loop_visits.get(target, 0)
        if visits >= self.loop_bound:
            return False
        state.loop_visits[target] = visits + 1
        return True

    def _record_bound(
        self, events: FunctionEvents, pc: int, op: str, a: E.Expr, b: E.Expr
    ) -> None:
        """Record Vyper-style range checks: tainted value vs constant bound.

        Only ``lt(value, bound)`` with the loaded value on the left
        counts: the mirrored ``lt(i, num)`` is a Solidity array bound
        check on a loop counter, and ``gt(num, i)`` is the same check in
        its inverted (obfuscated) form — neither is a clamp.
        """
        if op == "lt" and b.is_const and _direct_taint(a):
            events.add_use(UseEvent(pc, f"{op}_bound", a.labels, b.value))
            events.vyper_markers += 1


def _is_calldata0(e: E.Expr) -> bool:
    return e.op == "calldata" and e.args[0].is_const and e.args[0].value == 0


def _eq_zero_operand(a: E.Expr, b: E.Expr):
    """For eq(0, x) or eq(x, 0), return x; else None."""
    if a.is_const and a.value == 0:
        return b
    if b.is_const and b.value == 0:
        return a
    return None


def _direct_taint(e: E.Expr) -> bool:
    """Is ``e`` a direct (possibly lightly wrapped) parameter load?

    Usage rules fire on the loaded value itself or a masked version of
    it — not on location arithmetic that merely *contains* a load.
    Shift-pair masking (the AND-in-disguise obfuscation) also counts
    as light wrapping.
    """
    if e.op in ("calldata", "mem"):
        return True
    if e.op in ("and", "signextend") and len(e.args) == 2:
        return _direct_taint(e.args[1]) or _direct_taint(e.args[0])
    if e.op in ("shl", "shr") and len(e.args) == 2 and e.args[0].is_const:
        return _direct_taint(e.args[1])
    if e.op == "iszero":
        return _direct_taint(e.args[0])
    return False
