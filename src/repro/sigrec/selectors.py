"""Static extraction of function ids from the dispatcher.

Independent of TASE: a linear scan for the ``PUSH4 <id> EQ``/``EQ PUSH4``
dispatcher comparisons Solidity and Vyper emit.  Used as a cross-check
of the symbolic dispatcher exploration and by the database baselines,
which only need function ids (not types).
"""

from __future__ import annotations

from typing import List, Set

from repro.evm.disasm import disassemble


def extract_selectors(bytecode: bytes) -> List[int]:
    """Function ids referenced by dispatcher comparisons, sorted.

    Recognizes the two common shapes::

        DUP1 PUSH4 <id> EQ PUSH<n> <dest> JUMPI
        PUSH4 <id> DUP2 EQ ...

    A PUSH4 immediately compared with EQ (within the next two
    instructions) is taken as a candidate selector.
    """
    instructions = disassemble(bytecode)
    selectors: Set[int] = set()
    for i, ins in enumerate(instructions):
        if not ins.op.is_push or ins.op.immediate_size != 4:
            continue
        window = instructions[i + 1 : i + 3]
        if any(nxt.op.name == "EQ" for nxt in window):
            selectors.add(ins.operand or 0)
    return sorted(selectors)
