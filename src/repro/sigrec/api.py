"""The public SigRec interface.

    >>> from repro import SigRec
    >>> tool = SigRec()
    >>> for sig in tool.recover(runtime_bytecode):
    ...     print(sig.selector_hex, sig.param_list)

``recover`` runs the full pipeline of Fig. 12: disassembly, dispatcher
exploration, TASE, and the rule-based inference, returning one
:class:`RecoveredSignature` per public/external function found.
"""

from __future__ import annotations

import hashlib
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.analysis.report import ContractAnalysis, Diagnostic, analyze, cross_check
from repro.obs import (
    NULL_REGISTRY,
    NULL_TRACER,
    HotLoopProfiler,
    MetricsRegistry,
    RunLedger,
    SpanTracer,
    phase_span,
)
from repro.obs.ledger import phase_delta, phase_snapshot
from repro.obs.profiler import top_hotspots
from repro.sigrec.engine import TASEEngine, TASEResult, merge_tase_results
from repro.sigrec.events import events_digest
from repro.sigrec.inference import PredicateMemo, infer_function
from repro.sigrec.rules import RuleTracker
from repro.sigrec.selectors import extract_selectors

#: How many engine results one SigRec instance keeps around so that
#: ``explain`` right after ``recover`` (the interactive workflow) does
#: not re-run TASE from scratch.
_RESULT_MEMO_SIZE = 8

#: How many static analyses one SigRec instance keeps.  ``recover``,
#: ``explain``, ``profile`` and sharded re-runs all need the same
#: per-bytecode analysis; the memo makes it one CFG/dispatcher walk
#: per bytecode per instance instead of one per call.
_ANALYSIS_MEMO_SIZE = 16


def _passes(
    selector: int, only: Optional[FrozenSet[int]], exclude: FrozenSet[int]
) -> bool:
    """The selector filter used by (contract, selector-group) units."""
    return (only is None or selector in only) and selector not in exclude


@dataclass(frozen=True)
class RecoveredSignature:
    """One recovered function signature (function id + parameter types)."""

    selector: int
    param_types: tuple
    language: str = "solidity"
    elapsed_seconds: float = 0.0
    fired_rules: tuple = ()
    # Parallel to param_types: "high" / "medium" / "low" evidence levels.
    confidences: tuple = ()

    @property
    def selector_hex(self) -> str:
        return f"0x{self.selector:08x}"

    @property
    def param_list(self) -> str:
        return ",".join(self.param_types)

    def canonical(self, name: str = "func") -> str:
        """Canonical form with a placeholder name (ids don't carry names)."""
        return f"{name}({self.param_list})"

    def __str__(self) -> str:
        return f"{self.selector_hex}({self.param_list})"


class SigRec:
    """Recovers function signatures from runtime EVM bytecode.

    One instance accumulates rule-usage statistics (:attr:`tracker`)
    across every contract it analyses, which is how the Fig.-19
    frequency study is produced.
    """

    def __init__(
        self,
        max_total_steps: int = 400_000,
        max_paths: int = 768,
        fork_bound: int = 3,
        loop_bound: int = 420,
        max_path_steps: int = 60_000,
        semantic_idioms: bool = True,
        scheduler: str = "priority",
        driver: str = "superblock",
        coarse_only: bool = False,
        static_check: bool = True,
        prune: bool = False,
        sharded: bool = True,
        memo: bool = True,
        memo_dir: Optional[str] = None,
        inference_memo: bool = True,
        inference_memo_dir: Optional[str] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[SpanTracer] = None,
        ledger: Optional[RunLedger] = None,
        profiler: Optional[HotLoopProfiler] = None,
    ) -> None:
        self.tracker = RuleTracker()
        # Observability backends: ``None`` means the shared null
        # singletons, whose instruments swallow everything.  None of
        # these are part of :meth:`options` — telemetry wiring never
        # changes what is recovered, so it must not perturb cache
        # fingerprints.
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.ledger = ledger
        self.profiler = profiler
        if ledger is not None and self.metrics is NULL_REGISTRY:
            # Ledger records attribute per-phase seconds as deltas of the
            # ``phase.seconds`` histograms, which need a real registry.
            self.metrics = MetricsRegistry()
        self.semantic_idioms = semantic_idioms
        self.coarse_only = coarse_only
        # ``static_check`` cross-validates TASE's selector set against
        # the static dispatcher analysis after every ``recover`` (see
        # :attr:`last_diagnostics`); ``prune`` additionally hands the
        # analysis to the engine as a pruning oracle.  Pruning is
        # output-preserving by construction but off by default so the
        # baseline configuration stays byte-for-byte the historical one.
        self.static_check = static_check
        self.prune = prune
        # ``sharded`` makes the *function* the unit of recovery: when
        # the static analysis fully resolves the dispatcher, each
        # selector is explored as an independent shard (own path/step
        # budgets, early-exitable) and the monolithic walk only backstops
        # contracts the dispatcher analysis cannot close.  ``memo``
        # additionally keys each shard's inferred signature by its code
        # region so clone-heavy corpora recover each shared body once;
        # ``memo_dir`` adds the persistent on-disk memo tier (it is
        # wiring, like ``metrics``, and not part of :meth:`options`).
        self.sharded = sharded
        self.memo = memo
        self.memo_dir = memo_dir
        self._fn_memo = None
        # ``inference_memo`` adds the third caching tier: inference
        # products keyed by the canonical event-stream digest
        # (:func:`repro.sigrec.events.events_digest`), so clones whose
        # *bytecode* differs but whose event streams normalize
        # identically skip rule inference entirely (TASE still runs).
        # ``inference_memo_dir`` adds its persistent on-disk tier; like
        # ``memo_dir`` it is wiring and not part of :meth:`options`.
        self.inference_memo = inference_memo
        self.inference_memo_dir = inference_memo_dir
        self._inf_memo = None
        #: "sharded" or "monolithic": which exploration strategy the
        #: most recent ``recover`` call actually used.
        self.last_strategy: str = "monolithic"
        #: Cache-tier outcome of the most recent ``recover`` call:
        #: "cold" (everything explored), "memo" (every wanted selector
        #: replayed from the function memo) or "memo-partial".  The
        #: "result-cache" tier is recorded by the batch parent, which
        #: never calls ``recover`` for those contracts.
        self._last_tier: str = "cold"
        #: (memo hits, memo misses) of the most recent ``recover``.
        self._last_memo: Tuple[int, int] = (0, 0)
        #: (inference-memo hits, misses) of the most recent ``recover``.
        self._last_inference_memo: Tuple[int, int] = (0, 0)
        #: Structured static/TASE divergence reports from the most
        #: recent ``recover`` call (empty when they agree, or when
        #: ``static_check`` is off).
        self.last_diagnostics: Tuple[Diagnostic, ...] = ()
        self._engine_opts = dict(
            max_total_steps=max_total_steps,
            max_paths=max_paths,
            fork_bound=fork_bound,
            loop_bound=loop_bound,
            max_path_steps=max_path_steps,
            semantic_idioms=semantic_idioms,
            # Path scheduling and step driver ride in the engine opts so
            # they reach every engine construction *and* the cache/memo
            # fingerprint via :meth:`options`: the driver is
            # output-preserving by construction, but the scheduler
            # changes which paths survive a truncated walk, so cached
            # recoveries must be keyed by both.
            scheduler=scheduler,
            driver=driver,
        )
        # Recent engine results, keyed by bytecode digest: ``recover``
        # deposits here and ``explain`` reuses instead of re-running TASE.
        self._result_memo: "OrderedDict[bytes, TASEResult]" = OrderedDict()
        # Recent static analyses, same keying: every consumer goes
        # through :meth:`_analyze` so one bytecode is walked once.
        self._analysis_memo: "OrderedDict[bytes, ContractAnalysis]" = (
            OrderedDict()
        )

    def options(self) -> Dict[str, object]:
        """Everything needed to build an equivalent instance.

        Used by the batch executor to construct per-worker tools and by
        the persistent cache as the invalidation fingerprint.
        """
        opts = dict(self._engine_opts)
        opts["coarse_only"] = self.coarse_only
        opts["static_check"] = self.static_check
        opts["prune"] = self.prune
        opts["sharded"] = self.sharded
        opts["memo"] = self.memo
        opts["inference_memo"] = self.inference_memo
        return opts

    def function_memo(self):
        """The function-body memo, created on first use (or ``None``).

        Exposed so the batch executor can share one per-process memo
        across worker tools via :meth:`set_function_memo`.
        """
        if not self.memo:
            return None
        if self._fn_memo is None:
            from repro.sigrec.cache import FunctionMemo

            self._fn_memo = FunctionMemo(
                self.options(), directory=self.memo_dir, metrics=self.metrics
            )
        return self._fn_memo

    def set_function_memo(self, memo) -> None:
        """Inject a shared :class:`FunctionMemo` (batch workers)."""
        self._fn_memo = memo

    def inference_memo_tier(self):
        """The inference memo, created on first use (or ``None``).

        Exposed so the batch executor can share one per-process memo
        across worker tools via :meth:`set_inference_memo`.
        """
        if not self.inference_memo:
            return None
        if self._inf_memo is None:
            from repro.sigrec.cache import InferenceMemo

            self._inf_memo = InferenceMemo(
                self.options(),
                directory=self.inference_memo_dir,
                metrics=self.metrics,
            )
        return self._inf_memo

    def set_inference_memo(self, memo) -> None:
        """Inject a shared :class:`InferenceMemo` (batch workers)."""
        self._inf_memo = memo

    def _analyze(self, bytecode: bytes) -> ContractAnalysis:
        """The memoized static analysis for ``bytecode``.

        The pipeline walk (CFG, jump fixpoint, stack check, dispatcher,
        storage, lint) is pure in the bytecode, so one instance computes
        it once per bytecode and every consumer — ``recover``'s shard
        planner, the cross-check, ``profile`` — shares the result.  Only
        a miss pays the walk (and records the ``static_analysis`` span).
        """
        digest = hashlib.sha256(bytecode).digest()
        analysis = self._analysis_memo.get(digest)
        if analysis is not None:
            self._analysis_memo.move_to_end(digest)
            return analysis
        with phase_span(self.metrics, self.tracer, "static_analysis"):
            analysis = analyze(
                bytecode, metrics=self.metrics, tracer=self.tracer
            )
        self._analysis_memo[digest] = analysis
        while len(self._analysis_memo) > _ANALYSIS_MEMO_SIZE:
            self._analysis_memo.popitem(last=False)
        return analysis

    def _run_engine(
        self, bytecode: bytes, analysis: Optional[ContractAnalysis] = None
    ) -> TASEResult:
        """Run TASE and remember the result for a follow-up ``explain``."""
        with phase_span(self.metrics, self.tracer, "disasm"):
            engine = TASEEngine(
                bytecode,
                analysis=analysis if self.prune else None,
                metrics=self.metrics,
                profiler=self.profiler,
                **self._engine_opts,
            )
        with phase_span(self.metrics, self.tracer, "tase"):
            result = engine.run()
        self._deposit_result(bytecode, result)
        return result

    def _deposit_result(self, bytecode: bytes, result: TASEResult) -> None:
        digest = hashlib.sha256(bytecode).digest()
        self._result_memo[digest] = result
        self._result_memo.move_to_end(digest)
        while len(self._result_memo) > _RESULT_MEMO_SIZE:
            self._result_memo.popitem(last=False)

    def recover(
        self,
        bytecode: bytes,
        *,
        only: Optional[FrozenSet[int]] = None,
        exclude: FrozenSet[int] = frozenset(),
    ) -> List[RecoveredSignature]:
        """Recover the signatures of all public/external functions.

        ``only``/``exclude`` restrict which selectors are inferred
        (a selector is recovered iff it passes both filters); the batch
        scheduler uses them to split one contract into independent
        (contract, selector-group) work units.  With the default
        ``None``/empty values the behavior is the historical whole-
        contract recovery.
        """
        publish = self.metrics is not NULL_REGISTRY
        fired_before = dict(self.tracker.counts) if publish else {}
        conflicts_before = dict(self.tracker.conflicts) if publish else {}
        partial = only is not None or bool(exclude)
        phases_before: Optional[Dict[str, float]] = None
        hot_before: Optional[Dict[int, int]] = None
        started = 0.0
        if self.ledger is not None:
            phases_before = phase_snapshot(self.metrics)
            if self.profiler is not None:
                hot_before = self.profiler.snapshot()
            started = time.perf_counter()
        self._last_tier = "cold"
        self._last_memo = (0, 0)
        self._last_inference_memo = (0, 0)
        with phase_span(
            self.metrics, self.tracer, "recover", bytes=len(bytecode)
        ):
            analysis: Optional[ContractAnalysis] = None
            if self.static_check or self.prune or self.sharded:
                analysis = self._analyze(bytecode)
            plan = self._shard_plan(analysis)
            if plan is not None:
                self.last_strategy = "sharded"
                recovered, result = self._recover_sharded(
                    bytecode, analysis, plan, only, exclude
                )
            else:
                self.last_strategy = "monolithic"
                result = self._run_engine(bytecode, analysis)
                recovered = []
                pred_memo = PredicateMemo()
                with phase_span(self.metrics, self.tracer, "inference"):
                    for selector in result.selectors:
                        if not _passes(selector, only, exclude):
                            continue
                        recovered.append(
                            self._infer_one(
                                selector, result.functions[selector],
                                pred_memo,
                            )
                        )
                inf_hits, inf_misses = self._last_inference_memo
                if inf_hits:
                    self._last_tier = (
                        "inference-memo"
                        if inf_misses == 0
                        else "inference-memo-partial"
                    )
            self.last_diagnostics = self._diagnose(
                analysis, result, partial=partial
            )
        if publish:
            self._publish_recover_metrics(
                recovered, fired_before, conflicts_before
            )
        if self.ledger is not None:
            self.ledger.append(
                self._ledger_record(
                    bytecode,
                    recovered,
                    result,
                    phases_before or {},
                    hot_before,
                    time.perf_counter() - started,
                    partial,
                )
            )
        return recovered

    def _ledger_record(
        self,
        bytecode: bytes,
        recovered: List[RecoveredSignature],
        result: TASEResult,
        phases_before: Dict[str, float],
        hot_before: Optional[Dict[int, int]],
        elapsed: float,
        partial: bool,
    ) -> dict:
        """One run-ledger record for the ``recover`` call just finished."""
        from repro.sigrec.cache import options_fingerprint

        memo_hits, memo_misses = self._last_memo
        record = {
            "code_sha256": hashlib.sha256(bytecode).hexdigest(),
            "bytes": len(bytecode),
            "fingerprint": options_fingerprint(self.options()),
            "strategy": self.last_strategy,
            "tier": self._last_tier,
            "partial": partial,
            "functions": len(recovered),
            "elapsed_seconds": round(elapsed, 9),
            "phases": {
                phase: round(seconds, 9)
                for phase, seconds in sorted(
                    phase_delta(
                        phases_before, phase_snapshot(self.metrics)
                    ).items()
                )
            },
            "memo": {"hits": memo_hits, "misses": memo_misses},
            "inference_memo": {
                "hits": self._last_inference_memo[0],
                "misses": self._last_inference_memo[1],
            },
            "tase": {
                "steps": result.total_steps,
                "paths": result.paths_explored,
                "forks": result.forks_taken,
                "forks_suppressed": result.pruned_forks,
                "budget_exhaustions": result.budget_exhaustions,
                "truncated_paths": result.truncated_paths,
                "truncated_steps": result.truncated_steps,
                "abandoned_states": result.abandoned_states,
            },
            "diagnostics": [
                {"kind": d.kind, "detail": d.detail}
                for d in self.last_diagnostics
            ],
        }
        if self.profiler is not None and hot_before is not None:
            hotspots = top_hotspots(self.profiler.delta(hot_before), 16)
            if hotspots:
                record["hotspots"] = [list(pair) for pair in hotspots]
        return record

    def _shard_plan(self, analysis: Optional[ContractAnalysis]):
        """The sorted selector list to shard on, or None → monolithic.

        Sharding requires a *trustworthy* dispatcher map: the jump
        fixpoint must have completed and the static walk must have found
        at least one entry.  Anything less falls back to the monolithic
        walk, which needs no static help.
        """
        if not self.sharded or analysis is None:
            return None
        if analysis.cfg.incomplete:
            return None
        if not analysis.dispatcher.entries:
            return None
        return tuple(sorted(analysis.dispatcher.entries))

    def _recover_sharded(
        self,
        bytecode: bytes,
        analysis: ContractAnalysis,
        plan: Tuple[int, ...],
        only: Optional[FrozenSet[int]],
        exclude: FrozenSet[int],
    ) -> Tuple[List[RecoveredSignature], TASEResult]:
        """Per-selector shards + residual walk + function-body memo."""
        from repro.sigrec.cache import FunctionRecord, InferenceRecord

        known = frozenset(plan)
        wanted = [s for s in plan if _passes(s, only, exclude)]
        memo = self.function_memo()
        inf_memo = self.inference_memo_tier()
        hits: Dict[int, object] = {}
        miss_keys: Dict[int, str] = {}
        with phase_span(self.metrics, self.tracer, "disasm"):
            engine = TASEEngine(
                bytecode,
                analysis=analysis if self.prune else None,
                metrics=self.metrics,
                profiler=self.profiler,
                **self._engine_opts,
            )
        with phase_span(self.metrics, self.tracer, "tase"):
            parts: List[TASEResult] = []
            for selector in wanted:
                if memo is not None:
                    preimage = analysis.function_preimage(selector)
                    if preimage is not None:
                        key = memo.key_for(preimage)
                        record = memo.get(key)
                        if record is not None:
                            hits[selector] = record
                            continue
                        miss_keys[selector] = key
                parts.append(engine.run_selector(selector, known))
            # The residual walk covers the fallback and any selector the
            # static dispatcher missed.  A selector-group unit whose
            # ``only`` set is fully covered by per-selector shards can
            # skip it: residual discoveries could not pass its filter.
            if only is None or (set(only) - set(plan)):
                parts.append(engine.run_residual(known))
            result = merge_tase_results(parts)
            result.selectors = sorted(set(result.functions) | set(hits))
            engine.publish_metrics(result)
        recovered: List[RecoveredSignature] = []
        fresh_inferred = 0
        inf_hits = inf_misses = 0
        pred_memo = PredicateMemo()
        with phase_span(self.metrics, self.tracer, "inference"):
            for selector in result.selectors:
                if not _passes(selector, only, exclude):
                    continue
                record = hits.get(selector)
                if record is not None:
                    # Memo hit: replay the recorded rule activity so the
                    # Fig.-19 aggregates match a memo-less run exactly.
                    self.tracker.merge(record.rule_counts)
                    for rule_id, count in record.conflicts.items():
                        self.tracker.conflict(rule_id, count)
                    recovered.append(record.to_signature())
                    continue
                events = result.functions[selector]
                inf_key = None
                if inf_memo is not None:
                    inf_key = inf_memo.key_for(events_digest(events))
                    inf_record = inf_memo.get(inf_key)
                    if inf_record is not None:
                        # Inference-memo hit: TASE ran, inference is
                        # replayed — counters exactly as a fresh run.
                        inf_hits += 1
                        self.tracker.merge(inf_record.rule_counts)
                        for rule_id, count in inf_record.conflicts.items():
                            self.tracker.conflict(rule_id, count)
                        recovered.append(inf_record.to_signature(selector))
                        # Backfill the function memo so the next run on
                        # this exact body hits the cheaper tier (which
                        # also skips TASE).
                        key = miss_keys.get(selector)
                        if memo is not None and key is not None:
                            memo.put(
                                key, inf_record.to_function_record(selector)
                            )
                        continue
                    inf_misses += 1
                fresh_inferred += 1
                local = RuleTracker()
                start = time.perf_counter()
                inferred = infer_function(
                    events, local,
                    semantic_idioms=self.semantic_idioms,
                    coarse_only=self.coarse_only,
                    memo=pred_memo,
                )
                elapsed = time.perf_counter() - start
                self.tracker.merge(local)
                signature = RecoveredSignature(
                    selector=selector,
                    param_types=tuple(inferred.param_types),
                    language=inferred.language,
                    elapsed_seconds=elapsed,
                    fired_rules=tuple(inferred.fired_rules),
                    confidences=tuple(inferred.confidences),
                )
                recovered.append(signature)
                key = miss_keys.get(selector)
                if memo is not None and key is not None:
                    memo.put(
                        key,
                        FunctionRecord(
                            selector=selector,
                            param_types=signature.param_types,
                            language=signature.language,
                            fired_rules=signature.fired_rules,
                            confidences=signature.confidences,
                            rule_counts={
                                r: c for r, c in local.counts.items() if c
                            },
                            conflicts=dict(local.conflicts),
                        ),
                    )
                if inf_memo is not None and inf_key is not None:
                    inf_memo.put(
                        inf_key,
                        InferenceRecord.from_inference(
                            signature.param_types,
                            signature.language,
                            signature.fired_rules,
                            signature.confidences,
                            local.counts,
                            local.conflicts,
                        ),
                    )
        self._last_memo = (len(hits), len(miss_keys))
        self._last_inference_memo = (inf_hits, inf_misses)
        if hits:
            self._last_tier = (
                "memo"
                if fresh_inferred == 0 and inf_hits == 0
                else "memo-partial"
            )
        elif inf_hits:
            self._last_tier = (
                "inference-memo"
                if fresh_inferred == 0
                else "inference-memo-partial"
            )
        if not hits:
            # Every function was actually explored, so the merged result
            # is a complete event map ``explain`` may reuse; with memo
            # hits it would be missing bodies and must not be deposited.
            self._deposit_result(bytecode, result)
        return recovered, result

    def _infer_one(
        self, selector: int, events, pred_memo: Optional[PredicateMemo] = None
    ) -> RecoveredSignature:
        """Monolithic-path inference for one function.

        Probes the inference memo first (the monolithic walk has no
        function-body preimage, so the event digest is its only memo
        key); a fresh inference runs against a local tracker merged
        into the shared one, so its counts are replayable on a later
        hit — the same Fig.-19 parity discipline as the sharded path.
        """
        from repro.sigrec.cache import InferenceRecord

        inf_memo = self.inference_memo_tier()
        inf_key = None
        if inf_memo is not None:
            inf_key = inf_memo.key_for(events_digest(events))
            inf_record = inf_memo.get(inf_key)
            hits, misses = self._last_inference_memo
            if inf_record is not None:
                self._last_inference_memo = (hits + 1, misses)
                self.tracker.merge(inf_record.rule_counts)
                for rule_id, count in inf_record.conflicts.items():
                    self.tracker.conflict(rule_id, count)
                return inf_record.to_signature(selector)
            self._last_inference_memo = (hits, misses + 1)
        local = RuleTracker()
        start = time.perf_counter()
        inferred = infer_function(
            events, local,
            semantic_idioms=self.semantic_idioms,
            coarse_only=self.coarse_only,
            memo=pred_memo,
        )
        elapsed = time.perf_counter() - start
        self.tracker.merge(local)
        signature = RecoveredSignature(
            selector=selector,
            param_types=tuple(inferred.param_types),
            language=inferred.language,
            elapsed_seconds=elapsed,
            fired_rules=tuple(inferred.fired_rules),
            confidences=tuple(inferred.confidences),
        )
        if inf_memo is not None and inf_key is not None:
            inf_memo.put(
                inf_key,
                InferenceRecord.from_inference(
                    signature.param_types,
                    signature.language,
                    signature.fired_rules,
                    signature.confidences,
                    local.counts,
                    local.conflicts,
                ),
            )
        return signature

    def _diagnose(
        self,
        analysis: Optional[ContractAnalysis],
        result: TASEResult,
        partial: bool = False,
    ) -> Tuple[Diagnostic, ...]:
        """Truncation warnings first, then the static/TASE cross-check.

        A ``max_paths``/step-limit truncation means the engine abandoned
        live exploration states, so the recovery may be missing whole
        functions — structurally different from a complete run that
        simply found few selectors, and invisible without this record.
        """
        diagnostics = []
        if result.truncated_paths:
            diagnostics.append(
                Diagnostic(
                    kind="tase-truncated-paths",
                    detail=(
                        f"path cap max_paths={self._engine_opts['max_paths']} "
                        f"reached; exploration abandoned "
                        f"{result.abandoned_states} pending state(s) and "
                        "the recovery may be incomplete"
                    ),
                )
            )
        if result.truncated_steps:
            diagnostics.append(
                Diagnostic(
                    kind="tase-truncated-steps",
                    detail=(
                        "step ceiling reached "
                        f"(max_total_steps={self._engine_opts['max_total_steps']}"
                        " or the per-path limit); the recovery may be incomplete"
                    ),
                )
            )
        if self.static_check and analysis is not None and not partial:
            # A filtered (selector-group) recovery only explores part of
            # the contract; comparing its selector set against the full
            # static map would report spurious divergences.
            diagnostics.extend(cross_check(analysis, result.selectors))
        return tuple(diagnostics)

    def _publish_recover_metrics(
        self,
        recovered: List[RecoveredSignature],
        fired_before: Dict[str, int],
        conflicts_before: Dict[str, int],
    ) -> None:
        """Per-recover counters, including this call's rule-fire deltas."""
        metrics = self.metrics
        metrics.counter("recover.calls").inc()
        metrics.counter("recover.functions").inc(len(recovered))
        for rule, count in self.tracker.counts.items():
            delta = count - fired_before.get(rule, 0)
            if delta:
                metrics.counter("rules.fired", rule=rule).inc(delta)
        for rule, count in self.tracker.conflicts.items():
            delta = count - conflicts_before.get(rule, 0)
            if delta:
                metrics.counter("rules.conflicts", rule=rule).inc(delta)

    def recover_map(self, bytecode: bytes) -> Dict[int, RecoveredSignature]:
        """Like :meth:`recover`, keyed by selector."""
        return {sig.selector: sig for sig in self.recover(bytecode)}

    def profile(
        self,
        bytecode: bytes,
        signatures: Optional[List[RecoveredSignature]] = None,
    ):
        """The contract profile: signatures + storage layout + static
        facts as one deterministic document.

        Runs a full recovery unless ``signatures`` (e.g. the result of
        an earlier :meth:`recover` call, or an empty list for a
        static-only profile) is given.  The static analysis is shared
        with ``recover`` through the per-instance memo, so
        ``recover`` + ``profile`` on the same bytecode walks the CFG
        once.
        """
        from repro.analysis.report import ContractProfile, build_profile

        if signatures is None:
            signatures = self.recover(bytecode)
        profile: ContractProfile = build_profile(
            self._analyze(bytecode), signatures
        )
        return profile

    def abi(
        self,
        bytecode: bytes,
        signatures: Optional[List[RecoveredSignature]] = None,
    ) -> List[dict]:
        """A standard Solidity ABI JSON array, from the bytecode alone.

        Inputs come from signature recovery (run here unless
        ``signatures`` is supplied), ``stateMutability`` from the
        mutability pass, and ``outputs`` from the returns pass's
        word-granular skeletons (static words as ``uint256``, dynamic
        tails as ``bytes``).  The static verdicts never guess, but the
        ABI format cannot express uncertainty, so ``unknown``
        mutability degrades to ``nonpayable`` (the weakest claim) and
        an unknown return shape degrades to no declared outputs — the
        profile document (:meth:`profile`) keeps the honest verdicts.

        Functions are named ``func_<selector hex>``; entries are sorted
        by selector.  The array validates against
        ``docs/abi.schema.json``.
        """
        if signatures is None:
            signatures = self.recover(bytecode)
        analysis = self._analyze(bytecode)
        by_selector = {sig.selector: sig for sig in signatures}
        mutability = analysis.mutability
        returns = analysis.returns
        entries: List[dict] = []
        for selector in sorted(set(analysis.selectors) | set(by_selector)):
            sig = by_selector.get(selector)
            inputs = [
                {"name": f"arg{i}", "type": rendered}
                for i, rendered in enumerate(sig.param_types)
            ] if sig is not None else []
            verdict = "unknown"
            if mutability is not None:
                verdict = mutability.functions.get(selector, "unknown")
            if verdict == "unknown":
                verdict = "nonpayable"
            shape: tuple = ()
            if returns is not None:
                recovered = returns.functions.get(selector)
                if recovered is not None and recovered.shape is not None:
                    shape = recovered.shape
            entries.append({
                "type": "function",
                "name": f"func_{selector:08x}",
                "inputs": inputs,
                "outputs": [{"name": "", "type": t} for t in shape],
                "stateMutability": verdict,
            })
        return entries

    def recover_batch(
        self,
        bytecodes: List[bytes],
        deduplicate: bool = True,
        workers: int = 0,
        cache_dir: Optional[str] = None,
        unit_size: Optional[int] = None,
    ) -> List[List[RecoveredSignature]]:
        """Recover many contracts; identical bytecodes analyze once.

        Mainnet contracts are massively duplicated (the paper's corpus:
        37,009,570 deployed contracts, only 368,679 unique bytecodes),
        so memoizing the analysis per unique bytecode is the difference
        between hours and minutes at chain scale.

        ``workers`` > 0 shards unique bytecodes across a process pool
        and ``cache_dir`` persists results on disk across runs; both are
        handled by :class:`repro.sigrec.batch.BatchRecovery`, and both
        produce the same signatures and merged rule counts as the
        default serial in-process path.  Every returned entry is an
        independent list — mutating one result never corrupts the result
        of a duplicated bytecode elsewhere in the batch.
        """
        if workers or cache_dir is not None:
            from repro.sigrec.batch import DEFAULT_UNIT_SIZE, BatchRecovery

            runner = BatchRecovery(
                tool=self,
                workers=workers,
                cache_dir=cache_dir,
                unit_size=(
                    unit_size if unit_size is not None else DEFAULT_UNIT_SIZE
                ),
            )
            return runner.recover_all(bytecodes, deduplicate=deduplicate)
        if not deduplicate:
            return [self.recover(code) for code in bytecodes]
        memo: Dict[bytes, List[RecoveredSignature]] = {}
        out: List[List[RecoveredSignature]] = []
        for code in bytecodes:
            if code not in memo:
                memo[code] = self.recover(code)
            out.append(list(memo[code]))
        return out

    def explain(self, bytecode: bytes, selector: int) -> str:
        """A human-readable account of one function's recovery.

        Lists the call-data accesses TASE observed (with their symbolic
        location expressions and guards), the type-revealing uses, the
        rules that fired, and the final parameter list — the evidence
        trail behind the answer.

        When ``recover`` (or a previous ``explain``) already analyzed
        this bytecode on this instance, the engine result is reused
        instead of re-running TASE and re-disassembling from scratch.
        """
        result = self._result_memo.get(hashlib.sha256(bytecode).digest())
        if result is None:
            result = self._run_engine(bytecode)
        events = result.functions.get(selector)
        if events is None:
            return f"0x{selector:08x}: function not found in the dispatcher"
        inferred = infer_function(
            events, RuleTracker(),
            semantic_idioms=self.semantic_idioms,
            coarse_only=self.coarse_only,
        )
        lines = [f"function 0x{selector:08x} ({inferred.language})"]
        lines.append("call-data loads:")
        for load in events.loads:
            guard_note = f"  [{len(load.guards)} guards]" if load.guards else ""
            lines.append(f"  pc={load.pc:#06x}  cd[{load.loc!r}]{guard_note}")
        if events.copies:
            lines.append("call-data copies:")
            for copy in events.copies:
                lines.append(
                    f"  pc={copy.pc:#06x}  src={copy.src!r} len={copy.length!r}"
                )
        if events.uses:
            lines.append("type-revealing uses:")
            for use in events.uses:
                operand = ""
                if use.operand is not None:
                    operand = (
                        f" operand={use.operand:#x}"
                        if use.operand < 1 << 64
                        else f" operand={use.operand:#066x}"
                    )
                lines.append(f"  pc={use.pc:#06x}  {use.kind}{operand}")
        lines.append(f"rules fired: {', '.join(inferred.fired_rules) or '(none)'}")
        lines.append(f"recovered: ({inferred.param_list()})")
        return "\n".join(lines)

    @staticmethod
    def extract_function_ids(bytecode: bytes) -> List[int]:
        """Static function-id extraction only (no type inference)."""
        return extract_selectors(bytecode)
