"""Mutability guards and RETURN-buffer emission, with ground truth.

The analysis layer recovers ``stateMutability`` and output shapes from
two compiler idioms; this module is where the code generators emit
them, so every corpus contract carries checkable ground truth (the same
contract the storage pass has with ``repro.compiler.storage``):

* **the CALLVALUE guard** — every non-payable function's prologue
  rejects attached value.  Plain form (solc)::

      CALLVALUE DUP1 ISZERO PUSH <ok> JUMPI
      PUSH1 0 DUP1 REVERT
      <ok>: JUMPDEST POP

  obfuscated form (older compilers / optimizers): ``CALLVALUE
  PUSH <revert> JUMPI`` straight into the shared revert block.
  A declared-``payable`` function instead *reads* the value
  (``CALLVALUE POP``) without branching on it — presence of the opcode
  alone must not read as a guard;

* **effect markers** — a declared mutability is only recoverable if the
  body actually exhibits it, so ``nonpayable`` bodies write a marker
  slot and ``view`` bodies read one.  The slot sits far above every
  ground-truth layout slot so storage-accuracy scoring is unaffected;

* **the RETURN buffer** — declared outputs are ABI-encoded at a high
  memory base: static head words hold a runtime value (``CALLER``, so
  the word is *not* constant), dynamic heads hold the constant tail
  offset, each tail is a length word plus one data word.

``FunctionSpec.mutability is None`` keeps the legacy emission — no
guard, no markers — whose honest ground truth is ``payable`` (exactly
what pre-0.4.x Solidity was).  ``FunctionSpec.returns == ()`` keeps the
``STOP`` epilogue (no outputs).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.compiler.options import CodegenOptions
from repro.evm.asm import Assembler

#: Marker slot for effect markers: far above every slot the storage
#: ground truth allocates (corpus layouts stay below ~0x20).
MARKER_SLOT = 0xA0

#: Return buffers start here — above the code generators' memory
#: allocations, so body stores never alias the encoded outputs.
RETURN_BASE = 0x8000

#: Declared types whose ABI encoding is a dynamic head/tail pair.
_DYNAMIC = ("bytes", "string")

#: Bytes per tail in the synthetic encoding: a length word (32) plus
#: one padded data word.
_TAIL_BYTES = 64


def is_dynamic_return(rendered: str) -> bool:
    return rendered in _DYNAMIC


def returns_skeleton(returns: Sequence[str]) -> Tuple[str, ...]:
    """Declared output types -> the word-granular skeleton the returns
    pass can actually recover (static word = ``uint256``, any dynamic
    tail = ``bytes``)."""
    return tuple(
        "bytes" if is_dynamic_return(t) else "uint256" for t in returns
    )


def mutability_ground_truth(mutability: Optional[str]) -> str:
    """The ABI ``stateMutability`` a spec's emission exhibits."""
    return "payable" if mutability is None else mutability


def emit_mutability_prologue(
    asm: Assembler,
    mutability: Optional[str],
    options: CodegenOptions,
    revert_label: str,
) -> None:
    """Emit the value guard (or the payable value read) for one body."""
    if mutability in ("nonpayable", "view", "pure"):
        if options.obfuscate:
            asm.op("CALLVALUE").push_label(revert_label).op("JUMPI")
        else:
            ok = asm.fresh_label("value_ok")
            asm.op("CALLVALUE").op("DUP1").op("ISZERO")
            asm.push_label(ok).op("JUMPI")
            asm.push(0).op("DUP1").op("REVERT")
            asm.label(ok).op("JUMPDEST").op("POP")
    elif mutability == "payable":
        # Reads msg.value without guarding on it: the recognizer must
        # not mistake opcode presence for the guard idiom.
        asm.op("CALLVALUE").op("POP")


def emit_effect_marker(asm: Assembler, mutability: Optional[str]) -> None:
    """Make the declared mutability observable in the reachable ops."""
    if mutability == "nonpayable":
        asm.push(1).push(MARKER_SLOT).op("SSTORE")
    elif mutability == "view":
        asm.push(MARKER_SLOT).op("SLOAD").op("POP")
    # pure / payable / legacy: nothing — pure must stay free of state
    # reads, and payable's verdict never depends on the op set.


def emit_returns(asm: Assembler, returns: Sequence[str]) -> None:
    """ABI-encode the declared outputs at ``RETURN_BASE`` and RETURN.

    Static words are ``CALLER`` (a runtime value: the recovered word
    must read as non-constant); dynamic heads are constant tail
    offsets; every tail is ``length=32`` plus one ``CALLER`` data word.
    """
    head_words = len(returns)
    tail_cursor = head_words * 32
    for index, rendered in enumerate(returns):
        if is_dynamic_return(rendered):
            asm.push(tail_cursor)
            tail_cursor += _TAIL_BYTES
        else:
            asm.op("CALLER")
        asm.push(RETURN_BASE + 32 * index).op("MSTORE")
    tail_cursor = head_words * 32
    for rendered in returns:
        if is_dynamic_return(rendered):
            asm.push(32).push(RETURN_BASE + tail_cursor).op("MSTORE")
            asm.op("CALLER")
            asm.push(RETURN_BASE + tail_cursor + 32).op("MSTORE")
            tail_cursor += _TAIL_BYTES
    asm.push(tail_cursor).push(RETURN_BASE).op("RETURN")
