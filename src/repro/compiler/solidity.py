"""Solidity-like code generation for parameter access.

Emits, for every parameter type of §2.3.1, the accessing pattern the
paper documents — instruction for instruction:

* basic types: CALLDATALOAD then AND / SIGNEXTEND / ISZERO-ISZERO
  masking, BYTE for bytes32, signed ops for int256;
* static arrays: public functions copy rows with CALLDATACOPY inside
  (dim-1) nested loops; external functions read items on demand with
  per-dimension bound checks (skipped under optimization for constant
  indices — the paper's case-5 blind spot);
* dynamic arrays: offset field, num field, then copies (public) or
  bound-checked loads (external);
* bytes/string: like one-dimensional dynamic arrays but with the copy
  length rounded up to a 32-byte multiple, and byte-granular access for
  ``bytes``;
* nested arrays and dynamic structs: chained offset dereferences,
  identical in public and external mode.

Every emitted body is *executable*: the differential tests run the
bytecode in the concrete interpreter against ABI-encoded call data.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.abi.signature import FunctionSignature, Visibility
from repro.abi.types import (
    AbiType,
    AddressType,
    ArrayType,
    BoolType,
    BytesType,
    FixedBytesType,
    IntType,
    StringType,
    TupleType,
    UIntType,
)
from repro.compiler.options import CodegenOptions
from repro.evm.asm import Assembler

_FULL = (1 << 256) - 1


def flatten_static_tuples(params: Tuple[AbiType, ...]) -> List[AbiType]:
    """Static structs have the same layout as their members laid out
    individually (paper §2.3.1 item 5), so codegen flattens them."""
    out: List[AbiType] = []
    for param in params:
        if isinstance(param, TupleType) and not param.is_dynamic:
            out.extend(flatten_static_tuples(param.components))
        else:
            out.append(param)
    return out


def head_positions(params: List[AbiType]) -> List[int]:
    """Byte offset of each parameter's head slot in the call data."""
    positions = []
    pos = 4
    for param in params:
        positions.append(pos)
        pos += param.head_size()
    return positions


class SolidityCodegen:
    """Emits the body of one function (dispatcher handled elsewhere)."""

    def __init__(self, options: CodegenOptions, asm: Assembler, revert_label: str):
        self.options = options
        self.asm = asm
        self.revert_label = revert_label
        self._mem = options.memory_base
        self.const_index = False  # case-5 knob: constant array indices
        self.no_byte_access = False  # case-5 knob: bytes never byte-read

    # ------------------------------------------------------------------

    def emit_function_body(self, sig: FunctionSignature) -> None:
        """Emit all parameter accesses for one function."""
        self._mem = self.options.memory_base
        params = flatten_static_tuples(sig.params)
        positions = head_positions(params)
        for param, pos in zip(params, positions):
            self.emit_param(param, pos, sig.visibility)

    # ------------------------------------------------------------------
    # Idiom emitters — each has a plain form and an obfuscated form
    # (semantically equivalent, syntactically different; §7).
    # ------------------------------------------------------------------

    def _emit_low_mask(self, bits: int) -> None:
        """Keep the low ``bits`` of the stack top."""
        if self.options.obfuscate:
            shift = 256 - bits
            self.asm.push(shift).op("SHL").push(shift).op("SHR")
        else:
            self.asm.push((1 << bits) - 1, width=bits // 8).op("AND")

    def _emit_high_mask(self, size_bytes: int) -> None:
        """Keep the high ``size_bytes`` bytes of the stack top."""
        if self.options.obfuscate:
            shift = 8 * (32 - size_bytes)
            self.asm.push(shift).op("SHR").push(shift).op("SHL")
        else:
            mask = ((1 << (8 * size_bytes)) - 1) << (8 * (32 - size_bytes))
            self.asm.push(mask, width=32).op("AND")

    def _emit_bool_mask(self) -> None:
        if self.options.obfuscate:
            # EQ-with-zero twice is ISZERO-ISZERO in disguise.
            self.asm.push(0).op("EQ").push(0).op("EQ")
        else:
            self.asm.op("ISZERO").op("ISZERO")

    def _emit_stride(self, stride: int) -> None:
        """stack [.., i] -> [.., i*stride]."""
        if self.options.obfuscate and stride % 32 == 0:
            words = stride // 32
            if words > 1:
                self.asm.push(words).op("MUL")
            self.asm.push(5).op("SHL")
        else:
            self.asm.push(stride).op("MUL")

    def _emit_add_const(self, value: int) -> None:
        """stack [.., x] -> [.., x + value]."""
        if self.options.obfuscate and value >= 4:
            half = value // 2
            self.asm.push(half).op("ADD").push(value - half).op("ADD")
        else:
            self.asm.push(value).op("ADD")

    def _emit_index_check_const(self, bound: int) -> None:
        """stack [.., i] -> [.., i]; pushes the in-range flag and jumps
        to the revert block when the check fails."""
        asm = self.asm
        if self.options.obfuscate:
            asm.op("DUP1").push(bound).op("GT")  # gt(bound, i) == i < bound
        else:
            asm.op("DUP1").push(bound).op("SWAP1").op("LT")
        asm.op("ISZERO").push_label(self.revert_label).op("JUMPI")

    def _emit_index_check_stack(self) -> None:
        """stack [.., bound, i] -> [.., bound, i]; revert when i >= bound."""
        asm = self.asm
        if self.options.obfuscate:
            asm.op("DUP1").op("DUP3").op("GT")  # gt(bound, i)
        else:
            asm.op("DUP2").op("DUP2").op("LT")  # lt(i, bound)
        asm.op("ISZERO").push_label(self.revert_label).op("JUMPI")

    def _emit_loop_guard_flag(self, push_bound) -> None:
        """stack [.., i] -> [.., i, in_range_flag]; ``push_bound`` emits
        the bound on top of a copy of i."""
        asm = self.asm
        asm.op("DUP1")  # [.., i, i]
        push_bound()  # [.., i, i, bound]
        if self.options.obfuscate:
            asm.op("GT")  # pops bound, i -> gt(bound, i)
        else:
            asm.op("SWAP1").op("LT")  # pops i, bound -> lt(i, bound)

    def emit_param(self, param: AbiType, pos: int, visibility: Visibility) -> None:
        if isinstance(param, ArrayType):
            if param.is_nested_dynamic:
                self._emit_nested_array(param, pos)
            elif param.length is None:
                if visibility is Visibility.PUBLIC:
                    self._emit_dynamic_array_public(param, pos)
                else:
                    self._emit_dynamic_array_external(param, pos)
            else:
                if visibility is Visibility.PUBLIC:
                    self._emit_static_array_public(param, pos)
                else:
                    self._emit_static_array_external(
                        param, pos, const_index=self.const_index
                    )
        elif isinstance(param, (BytesType, StringType)):
            if visibility is Visibility.PUBLIC:
                self._emit_blob_public(param, pos)
            else:
                self._emit_blob_external(param, pos)
        elif isinstance(param, TupleType):
            self._emit_dynamic_struct(param, pos)
        else:
            self._emit_basic(param, pos)

    # ------------------------------------------------------------------
    # Basic types
    # ------------------------------------------------------------------

    def _emit_basic(self, param: AbiType, pos: int) -> None:
        self.asm.push(pos).op("CALLDATALOAD")
        self._emit_value_use(param)

    def _emit_value_use(self, param: AbiType) -> None:
        """Mask + use the value on the stack top; consumes it."""
        asm = self.asm
        if isinstance(param, UIntType):
            if param.bits < 256:
                self._emit_low_mask(param.bits)
            asm.op("CALLER").op("ADD").op("POP")
        elif isinstance(param, IntType):
            if param.bits < 256:
                asm.push(param.bits // 8 - 1).op("SIGNEXTEND")
            asm.op("CALLER").op("SDIV").op("POP")
        elif isinstance(param, AddressType):
            self._emit_low_mask(160)
            asm.op("CALLER").op("EQ").op("POP")
        elif isinstance(param, BoolType):
            self._emit_bool_mask()
            asm.op("POP")
        elif isinstance(param, FixedBytesType):
            if param.size < 32:
                self._emit_high_mask(param.size)
                asm.op("POP")
            else:
                asm.push(0).op("BYTE").op("POP")
        else:
            asm.op("POP")

    # ------------------------------------------------------------------
    # Static arrays
    # ------------------------------------------------------------------

    @staticmethod
    def _static_dims(param: ArrayType) -> List[int]:
        """Dimension sizes, outermost first (all static)."""
        dims = []
        current: AbiType = param
        while isinstance(current, ArrayType):
            assert current.length is not None
            dims.append(current.length)
            current = current.element
        return dims

    @staticmethod
    def _strides(dims: List[int]) -> List[int]:
        """Per-level item stride in bytes (outermost first)."""
        strides = []
        for level in range(len(dims)):
            inner = 1
            for d in dims[level + 1 :]:
                inner *= d
            strides.append(inner * 32)
        return strides

    def _alloc(self, size: int) -> int:
        base = self._mem
        self._mem += max(32, (size + 31) // 32 * 32)
        return base

    def _emit_static_array_public(self, param: ArrayType, pos: int) -> None:
        """Nested concrete loops of CALLDATACOPYs (Listing 1 / R6 / R9)."""
        asm = self.asm
        dims = self._static_dims(param)
        strides = self._strides(dims)
        row_bytes = dims[-1] * 32
        total = row_bytes
        for d in dims[:-1]:
            total *= d
        membase = self._alloc(total)
        outer_dims = dims[:-1]
        outer_strides = strides[:-1]

        asm.push(0)  # offset accumulator

        def emit_level(level: int) -> None:
            if level == len(outer_dims):
                # stack: [..., acc]
                asm.push(row_bytes)  # [acc, len]
                asm.op("DUP2").push(pos).op("ADD")  # [acc, len, src]
                asm.op("DUP3").push(membase).op("ADD")  # [acc, len, src, dst]
                asm.op("CALLDATACOPY")  # [acc]
                return
            bound = outer_dims[level]
            stride = outer_strides[level]
            head = asm.fresh_label("sa_head")
            exit_ = asm.fresh_label("sa_exit")
            asm.push(0)  # [acc, i]
            asm.label(head).op("JUMPDEST")
            self._emit_loop_guard_flag(lambda: asm.push(bound))
            asm.op("ISZERO").push_label(exit_).op("JUMPI")
            asm.op("DUP1")
            self._emit_stride(stride)  # [acc, i, i*stride]
            asm.op("DUP3").op("ADD")  # [acc, i, child]
            emit_level(level + 1)
            asm.op("POP")  # [acc, i]
            asm.push(1).op("ADD").push_label(head).op("JUMP")
            asm.label(exit_).op("JUMPDEST").op("POP")  # [acc]

        emit_level(0)
        asm.op("POP")
        # Item use: MLOAD an item from the copied region.
        asm.push(membase).op("MLOAD")
        self._emit_value_use(param.base_element)

    def _emit_static_array_external(
        self, param: ArrayType, pos: int, const_index: bool = False
    ) -> None:
        """Bound-checked on-demand CALLDATALOAD (R3), or the optimized
        constant-index form without bound checks (paper case 5)."""
        asm = self.asm
        dims = self._static_dims(param)
        strides = self._strides(dims)

        if const_index and self.options.optimize:
            # Compile-time bound check only: a bare constant-location
            # load, indistinguishable from a basic parameter.
            asm.push(pos).op("CALLDATALOAD")
            self._emit_value_use(param.base_element)
            return

        asm.push(0)  # accumulator
        for bound, stride in zip(dims, strides):
            if const_index:
                index = min(1, bound - 1)
                asm.push(index, width=1)
            else:
                asm.op("CALLER").push(1).op("AND")
            # [acc, i]: check i < bound, else revert.
            self._emit_index_check_const(bound)
            self._emit_stride(stride)
            asm.op("ADD")  # acc += i*stride
        asm.push(pos).op("ADD").op("CALLDATALOAD")
        self._emit_value_use(param.base_element)

    # ------------------------------------------------------------------
    # Dynamic arrays
    # ------------------------------------------------------------------

    @staticmethod
    def _dynamic_dims(param: ArrayType) -> List[Optional[int]]:
        """[None, d2, d3, ...] — top dimension dynamic, lower static."""
        dims: List[Optional[int]] = []
        current: AbiType = param
        while isinstance(current, ArrayType):
            dims.append(current.length)
            current = current.element
        return dims

    def _emit_dynamic_array_public(self, param: ArrayType, pos: int) -> None:
        """Offset + num reads, then CALLDATACOPY (R5/R7/R10)."""
        asm = self.asm
        dims = self._dynamic_dims(param)
        membase = self._alloc(32)

        asm.push(pos).op("CALLDATALOAD")  # [o]
        self._emit_add_const(4)  # [numloc]
        asm.op("DUP1").op("CALLDATALOAD")  # [numloc, num]
        asm.op("DUP1").push(membase).op("MSTORE")  # num -> memory

        if len(dims) == 1:
            # One CALLDATACOPY reads a one-dimensional dynamic array.
            databuf = self._alloc(32 * 8)
            self._emit_stride(32)  # [numloc, len=num*32]
            asm.op("SWAP1").push(32).op("ADD")  # [len, src=numloc+32]
            asm.push(databuf)  # [len, src, dst]
            asm.op("CALLDATACOPY")
            asm.push(databuf).op("MLOAD")
            self._emit_value_use(param.base_element)
            return

        # Multidimensional: loop rows under the num bound (R10).
        inner_dims = [d for d in dims[1:]]  # all static
        row_bytes = inner_dims[-1] * 32
        mid_dims = inner_dims[:-1]
        strides = []
        for level in range(len(mid_dims) + 1):
            inner = 1
            for d in (mid_dims + [inner_dims[-1]])[level:]:
                inner *= d
            strides.append(inner * 32)
        top_stride = strides[0]
        scratch = self._alloc(32)
        databuf = self._alloc(top_stride * 4)

        asm.op("POP")  # [numloc]
        asm.push(32).op("ADD")  # [dataloc]
        asm.push(scratch).op("MSTORE")  # []

        loop_bounds: List[Optional[int]] = [None] + mid_dims
        loop_strides = [top_stride] + strides[1:]

        asm.push(0)  # acc

        def emit_level(level: int) -> None:
            if level == len(loop_bounds):
                # [acc]: copy one row
                asm.push(row_bytes)  # [acc, len]
                asm.op("DUP2").push(scratch).op("MLOAD").op("ADD")  # src
                asm.op("DUP3").push(databuf).op("ADD")  # dst
                asm.op("CALLDATACOPY")
                return
            bound = loop_bounds[level]
            stride = loop_strides[level]
            head = asm.fresh_label("da_head")
            exit_ = asm.fresh_label("da_exit")
            asm.push(0)  # [acc, i]
            asm.label(head).op("JUMPDEST")
            if bound is None:
                self._emit_loop_guard_flag(
                    lambda: asm.push(membase).op("MLOAD")
                )
            else:
                self._emit_loop_guard_flag(lambda b=bound: asm.push(b))
            asm.op("ISZERO").push_label(exit_).op("JUMPI")
            asm.op("DUP1")
            self._emit_stride(stride)
            asm.op("DUP3").op("ADD")
            emit_level(level + 1)
            asm.op("POP")
            asm.push(1).op("ADD").push_label(head).op("JUMP")
            asm.label(exit_).op("JUMPDEST").op("POP")

        emit_level(0)
        asm.op("POP")
        asm.push(databuf).op("MLOAD")
        self._emit_value_use(param.base_element)

    def _emit_dynamic_array_external(self, param: ArrayType, pos: int) -> None:
        """Bound-checked on-demand loads through the offset field (R2)."""
        asm = self.asm
        dims = self._dynamic_dims(param)
        inner_dims = dims[1:]
        strides = self._strides([1] + [d for d in inner_dims if d is not None])
        # strides[0] is for the (dynamic) top dimension.

        asm.push(pos).op("CALLDATALOAD")  # [o]
        asm.op("DUP1")
        self._emit_add_const(4)
        asm.op("CALLDATALOAD")  # [o, num]
        # Top index bound check: i < num.
        asm.op("CALLER").push(1).op("AND")  # [o, num, i]
        self._emit_index_check_stack()
        self._emit_stride(strides[0])  # [o, num, acc]
        level = 1
        for bound in inner_dims:
            assert bound is not None
            asm.op("CALLER").push(1).op("AND")  # [o, num, acc, j]
            self._emit_index_check_const(bound)
            self._emit_stride(strides[level])
            asm.op("ADD")
            level += 1
        asm.op("DUP3").op("ADD")  # [o, num, acc+o]
        self._emit_add_const(36)
        asm.op("CALLDATALOAD")
        self._emit_value_use(param.base_element)
        asm.op("POP").op("POP")  # num, o

    # ------------------------------------------------------------------
    # bytes / string
    # ------------------------------------------------------------------

    def _emit_blob_public(self, param: AbiType, pos: int) -> None:
        """Rounded-length CALLDATACOPY (R8); byte use only for bytes."""
        asm = self.asm
        membase = self._alloc(32)
        databuf = self._alloc(32 * 8)
        asm.push(pos).op("CALLDATALOAD").push(4).op("ADD")  # [numloc]
        asm.op("DUP1").op("CALLDATALOAD")  # [numloc, num]
        asm.op("DUP1").push(membase).op("MSTORE")
        # len = (num + 31) & ~31
        asm.push(31).op("ADD")
        asm.push(_FULL ^ 31, width=32).op("AND")  # [numloc, len]
        asm.op("SWAP1").push(32).op("ADD")  # [len, src]
        asm.push(databuf).op("CALLDATACOPY")
        asm.push(databuf).op("MLOAD")
        if isinstance(param, BytesType) and not self.no_byte_access:
            asm.push(0).op("BYTE").op("POP")
        else:
            asm.op("POP")

    def _emit_blob_external(self, param: AbiType, pos: int) -> None:
        asm = self.asm
        if isinstance(param, StringType) or self.no_byte_access:
            # Strings expose no byte access; typical code reads the
            # length only.
            asm.push(pos).op("CALLDATALOAD").push(4).op("ADD")
            asm.op("CALLDATALOAD").op("POP")
            return
        asm.push(pos).op("CALLDATALOAD")  # [o]
        asm.op("DUP1")
        self._emit_add_const(4)
        asm.op("CALLDATALOAD")  # [o, num]
        asm.op("CALLER").push(31).op("AND")  # [o, num, j]
        self._emit_index_check_stack()
        asm.op("DUP3").op("ADD")
        self._emit_add_const(36)  # [o, num, loc]
        asm.op("CALLDATALOAD").push(0).op("BYTE").op("POP")
        asm.op("POP").op("POP")

    # ------------------------------------------------------------------
    # Nested arrays (dynamic below the top dimension)
    # ------------------------------------------------------------------

    def _emit_nested_array(self, param: ArrayType, pos: int) -> None:
        """Chained offset dereferences, same in public and external mode."""
        asm = self.asm
        dims = self._dynamic_dims(param)
        depth = sum(1 for d in dims if d is None)
        scratches = [self._alloc(32) for _ in range(depth)]

        asm.push(pos).op("CALLDATALOAD").push(4).op("ADD")  # [hdr0]
        asm.push(scratches[0]).op("MSTORE")
        for level in range(depth):
            asm.push(scratches[level]).op("MLOAD")  # [numloc]
            asm.op("DUP1").op("CALLDATALOAD")  # [numloc, num]
            asm.op("CALLER").push(1).op("AND")  # [numloc, num, i]
            self._emit_index_check_stack()
            self._emit_stride(32)  # [numloc, num, i*32]
            asm.op("DUP3").op("ADD").push(32).op("ADD")  # elem loc
            if level < depth - 1:
                asm.op("CALLDATALOAD")  # inner offset (relative)
                asm.op("DUP3").op("ADD").push(32).op("ADD")  # abs base
                asm.push(scratches[level + 1]).op("MSTORE")
                asm.op("POP").op("POP")
            else:
                asm.op("CALLDATALOAD")
                self._emit_value_use(param.base_element)
                asm.op("POP").op("POP")

    # ------------------------------------------------------------------
    # Dynamic structs
    # ------------------------------------------------------------------

    def _emit_dynamic_struct(self, param: TupleType, pos: int) -> None:
        """Offset field, then component reads at fixed slots (R21)."""
        asm = self.asm
        asm.push(pos).op("CALLDATALOAD").push(4).op("ADD")  # [base]
        slot = 0
        for component in param.components:
            slot_offset = 32 * slot
            if isinstance(component, ArrayType) and component.is_nested_dynamic:
                # A nested array inside a struct (rule R19): one more
                # offset-dereference level below the component's own
                # offset field.
                asm.op("DUP1").push(slot_offset).op("ADD").op("CALLDATALOAD")
                asm.op("DUP2").op("ADD")  # [base, abs1]
                asm.op("DUP1").op("CALLDATALOAD")  # [base, abs1, num1]
                asm.op("CALLER").push(1).op("AND")  # [base, abs1, num1, i]
                self._emit_index_check_stack()
                self._emit_stride(32)  # [base, abs1, num1, i*32]
                asm.op("DUP3").op("ADD").push(32).op("ADD")  # inner offset loc
                asm.op("CALLDATALOAD")  # [base, abs1, num1, o2]
                asm.op("DUP3").op("ADD").push(32).op("ADD")  # [.., abs2]
                asm.op("DUP1").op("CALLDATALOAD")  # [.., abs2, num2]
                asm.op("CALLER").push(1).op("AND")
                self._emit_index_check_stack()
                self._emit_stride(32)
                asm.op("DUP3").op("ADD").push(32).op("ADD")
                asm.op("CALLDATALOAD")
                self._emit_value_use(component.base_element)
                asm.op("POP").op("POP").op("POP").op("POP")  # num2,abs2,num1,abs1
            elif isinstance(component, ArrayType) and component.length is None:
                # Dynamic component behind its own (relative) offset.
                asm.op("DUP1").push(slot_offset).op("ADD").op("CALLDATALOAD")
                asm.op("DUP2").op("ADD")  # [base, abs_inner]
                asm.op("DUP1").op("CALLDATALOAD")  # [base, abs, num]
                asm.op("CALLER").push(1).op("AND")  # [base, abs, num, j]
                self._emit_index_check_stack()
                self._emit_stride(32)  # [base, abs, num, j*32]
                asm.op("DUP3").op("ADD").push(32).op("ADD")
                asm.op("CALLDATALOAD")
                self._emit_value_use(component.base_element)
                asm.op("POP").op("POP")  # num, abs
            elif isinstance(component, (BytesType, StringType)):
                asm.op("DUP1").push(slot_offset).op("ADD").op("CALLDATALOAD")
                asm.op("DUP2").op("ADD")  # [base, abs_inner]
                asm.op("DUP1").op("CALLDATALOAD")  # [base, abs, num]
                if isinstance(component, BytesType):
                    asm.op("CALLER").push(31).op("AND")  # [.., num, j]
                    self._emit_index_check_stack()
                    asm.op("DUP3").op("ADD").push(32).op("ADD")
                    asm.op("CALLDATALOAD").push(0).op("BYTE").op("POP")
                asm.op("POP").op("POP")  # num, abs
            else:
                asm.op("DUP1").push(slot_offset).op("ADD").op("CALLDATALOAD")
                self._emit_value_use(component)
            slot += 1 if not isinstance(component, TupleType) else len(
                component.components
            )
        asm.op("POP")  # base
