"""Storage-access code generation (solc idioms, executable).

Emits the storage read/write shapes the layout-recovery pass
(:mod:`repro.analysis.storage`) must recognize, instruction for
instruction the way solc emits them:

* whole-slot values: ``PUSH slot SLOAD`` / ``PUSH v PUSH slot SSTORE``;
* packed sub-slot variables: shift-then-mask reads (``SHR k`` +
  ``AND (2^m - 1)``, ``SIGNEXTEND`` for signed) and read-modify-write
  stores (load, clear the field with the inverted mask, OR the new
  bytes in, store back);
* mappings: key at scratch memory 0x00, declaration slot at 0x20,
  ``SHA3(0, 0x40)``; nested mappings chain the pattern with the
  previous hash as the new slot.  Keys are ``CALLER`` — address-typed
  and, crucially, *not* call data, so storage traffic never perturbs
  the calldata taint that signature recovery observes;
* dynamic arrays: length at the declaration slot, data at
  ``SHA3(slot) + index`` via ``SHA3(0, 0x20)``.

Every emitted sequence is executable: scratch memory below 0x40 is
exactly the region solc's hashing idiom owns (the parameter-access
codegen allocates from ``options.memory_base``, far above), and the
concrete interpreter runs SLOAD/SSTORE/SHA3 natively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.evm.asm import Assembler

_FULL = (1 << 256) - 1

#: Storage-op kinds a :class:`StorageVariableSpec` can declare.
KINDS = ("value", "packed", "mapping", "dynamic_array")


@dataclass(frozen=True)
class StorageVariableSpec:
    """One declared storage variable for codegen + ground truth.

    ``offset``/``width`` (bytes) only matter for ``packed``; ``depth``
    only for ``mapping``; ``signed`` selects the SIGNEXTEND read idiom
    for packed fields.
    """

    slot: int
    kind: str  # one of KINDS
    offset: int = 0
    width: int = 32
    depth: int = 1
    signed: bool = False

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown storage kind {self.kind!r}")
        if self.kind == "packed":
            if not 1 <= self.width <= 32 or not 0 <= self.offset <= 31:
                raise ValueError("packed field outside the slot")
            if self.offset + self.width > 32:
                raise ValueError("packed field straddles the slot end")

    def expected_type(self) -> str:
        """The type string the recovery pass should report."""
        if self.kind == "mapping":
            rendered = "uint256"
            for _ in range(self.depth):
                rendered = f"mapping(address => {rendered})"
            return rendered
        if self.kind == "dynamic_array":
            return "uint256[]"
        width = 32 if self.kind == "value" else self.width
        if self.signed:
            return f"int{width * 8}"
        if width == 32:
            return "uint256"
        if width == 20:
            return "address"
        if width == 1:
            return "uint8"
        return f"uint{width * 8}"

    def ground_truth(self) -> dict:
        """The slot/offset/type facts recovery is scored against."""
        return {
            "slot": self.slot,
            "offset": self.offset if self.kind == "packed" else 0,
            "width": self.width if self.kind == "packed" else 32,
            "kind": "value" if self.kind == "packed" else self.kind,
            "type": self.expected_type(),
            "depth": self.depth if self.kind == "mapping" else 0,
        }


#: One storage operation: ("read" | "write", variable).
StorageOp = Tuple[str, StorageVariableSpec]


def emit_storage_op(asm: Assembler, op: str, spec: StorageVariableSpec) -> None:
    """Emit one executable storage access in the solc idiom."""
    if op not in ("read", "write"):
        raise ValueError(f"unknown storage op {op!r}")
    if spec.kind == "value":
        if op == "read":
            asm.push(spec.slot).op("SLOAD").op("POP")
        else:
            asm.push(1).push(spec.slot).op("SSTORE")
    elif spec.kind == "packed":
        _emit_packed(asm, op, spec)
    elif spec.kind == "mapping":
        _emit_mapping(asm, op, spec)
    else:  # dynamic_array
        _emit_dynamic_array(asm, op, spec)


def _emit_packed(asm: Assembler, op: str, spec: StorageVariableSpec) -> None:
    shift_bits = 8 * spec.offset
    width_bits = 8 * spec.width
    if op == "read":
        asm.push(spec.slot).op("SLOAD")
        if shift_bits:
            asm.push(shift_bits).op("SHR")
        if spec.signed and spec.width < 32:
            asm.push(spec.width - 1).op("SIGNEXTEND")
        else:
            asm.push((1 << width_bits) - 1, width=spec.width).op("AND")
        asm.op("POP")
        return
    # Read-modify-write: clear the field, OR the new bytes in.
    field_mask = ((1 << width_bits) - 1) << shift_bits
    asm.push(spec.slot).op("SLOAD")
    asm.push(_FULL ^ field_mask, width=32).op("AND")
    asm.push(1 << shift_bits, width=32).op("OR")
    asm.push(spec.slot).op("SSTORE")


def _emit_hash_chain(asm: Assembler, spec: StorageVariableSpec) -> None:
    """Leave ``keccak(CALLER . … . keccak(CALLER . slot))`` on the stack."""
    asm.op("CALLER").push(0).op("MSTORE")
    asm.push(spec.slot).push(0x20).op("MSTORE")
    asm.push(0x40).push(0).op("SHA3")
    for _ in range(spec.depth - 1):
        asm.op("CALLER").push(0).op("MSTORE")
        asm.push(0x20).op("MSTORE")  # previous hash becomes the slot word
        asm.push(0x40).push(0).op("SHA3")


def _emit_mapping(asm: Assembler, op: str, spec: StorageVariableSpec) -> None:
    _emit_hash_chain(asm, spec)
    if op == "read":
        asm.op("SLOAD").op("POP")
    else:
        asm.push(1).op("SWAP1").op("SSTORE")


def _emit_dynamic_array(
    asm: Assembler, op: str, spec: StorageVariableSpec
) -> None:
    # Length word at the declaration slot.
    asm.push(spec.slot).op("SLOAD").op("POP")
    # Element 1 at keccak(slot) + 1.
    asm.push(spec.slot).push(0).op("MSTORE")
    asm.push(0x20).push(0).op("SHA3")
    asm.push(1).op("ADD")
    if op == "read":
        asm.op("SLOAD").op("POP")
    else:
        asm.push(1).op("SWAP1").op("SSTORE")


def emit_storage_ops(asm: Assembler, ops: Sequence[StorageOp]) -> None:
    for op, spec in ops:
        emit_storage_op(asm, op, spec)


_KIND_RANK = {"value": 0, "dynamic_array": 1, "mapping": 2}


def _merge_truth(a: dict, b: dict) -> dict:
    """Merge two claims about one (slot, offset, width), mirroring the
    recovery fold: mapping beats array beats value, deeper mapping wins,
    a signed observation wins over an unsigned one."""
    if _KIND_RANK[a["kind"]] != _KIND_RANK[b["kind"]]:
        return max(a, b, key=lambda t: _KIND_RANK[t["kind"]])
    if a["kind"] == "mapping":
        return a if a["depth"] >= b["depth"] else b
    if a["type"].startswith("int"):
        return a
    return b if b["type"].startswith("int") else a


def storage_ground_truth(
    all_ops: Sequence[Sequence[StorageOp]],
) -> Tuple[dict, ...]:
    """The deduplicated, sorted expected layout across every function.

    Packed fields at distinct (offset, width) in one slot are distinct
    variables.  Signedness is only claimed when some *read* uses the
    SIGNEXTEND idiom — a read-modify-write store clears the field with
    the same mask either way, so a write-only signed field is honestly
    unobservable and the truth says unsigned.
    """
    from dataclasses import replace

    merged: Dict[Tuple[int, int, int], dict] = {}
    for ops in all_ops:
        for op, spec in ops:
            if spec.kind == "packed" and spec.signed and op != "read":
                spec = replace(spec, signed=False)
            truth = spec.ground_truth()
            key = (truth["slot"], truth["offset"], truth["width"])
            prev = merged.get(key)
            merged[key] = truth if prev is None else _merge_truth(prev, truth)
    out: List[dict] = [merged[key] for key in sorted(merged)]
    return tuple(out)
