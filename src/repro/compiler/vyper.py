"""Vyper-like code generation.

Vyper (paper §2.3.2) differs from Solidity in two load-bearing ways:

* basic values are validated with *comparison* range clamps (LT/GT/SLT/
  SGT against the type's bounds, reverting out-of-range values) instead
  of AND/SIGNEXTEND masks — this is what rule R20 keys on;
* a fixed-size byte array / string is read with one CALLDATACOPY of
  ``32 + maxLen`` bytes starting at the num field (R23), i.e. the num
  word and the capped payload together, with no 32-byte rounding.

Public and external functions compile to the same bytecode, and
fixed-size lists follow the external static-array pattern with an
additional per-item clamp.
"""

from __future__ import annotations

from typing import List

from repro.abi.signature import FunctionSignature
from repro.abi.types import (
    AbiType,
    AddressType,
    ArrayType,
    BoolType,
    BoundedBytesType,
    BoundedStringType,
    DecimalType,
    FixedBytesType,
    IntType,
    TupleType,
    UIntType,
)
from repro.compiler.options import CodegenOptions
from repro.compiler.solidity import flatten_static_tuples, head_positions
from repro.evm.asm import Assembler
from repro.sigrec.rules import (
    VYPER_ADDRESS_BOUND,
    VYPER_BOOL_BOUND,
    VYPER_DECIMAL_HI,
    VYPER_DECIMAL_LO,
    VYPER_INT128_HI,
    VYPER_INT128_LO,
)

_WORD = 1 << 256


def _unsigned(value: int) -> int:
    return value & (_WORD - 1)


class VyperCodegen:
    """Emits one Vyper function body (dispatcher handled elsewhere)."""

    def __init__(self, options: CodegenOptions, asm: Assembler, revert_label: str):
        self.options = options
        self.asm = asm
        self.revert_label = revert_label
        self._mem = options.memory_base

    def _alloc(self, size: int) -> int:
        base = self._mem
        self._mem += max(32, (size + 31) // 32 * 32)
        return base

    # ------------------------------------------------------------------

    def emit_function_body(self, sig: FunctionSignature) -> None:
        self._mem = self.options.memory_base
        params = flatten_static_tuples(sig.params)
        positions = head_positions(params)
        for param, pos in zip(params, positions):
            self.emit_param(param, pos)

    def emit_param(self, param: AbiType, pos: int) -> None:
        if isinstance(param, (BoundedBytesType, BoundedStringType)):
            self._emit_bounded_blob(param, pos)
        elif isinstance(param, ArrayType):
            self._emit_fixed_list(param, pos)
        else:
            self.asm.push(pos).op("CALLDATALOAD")
            self._emit_clamp_and_use(param)

    # ------------------------------------------------------------------

    def _emit_clamp_and_use(self, param: AbiType) -> None:
        """Range-validate the value on the stack top, then consume it."""
        asm = self.asm
        if isinstance(param, AddressType):
            self._emit_upper_clamp(VYPER_ADDRESS_BOUND)
            asm.op("CALLER").op("EQ").op("POP")
        elif isinstance(param, BoolType):
            self._emit_upper_clamp(VYPER_BOOL_BOUND)
            asm.op("POP")
        elif isinstance(param, IntType):
            # int128: both ends clamped with signed comparisons.
            self._emit_signed_clamp(VYPER_INT128_LO, VYPER_INT128_HI)
            asm.op("CALLER").op("SDIV").op("POP")
        elif isinstance(param, DecimalType):
            self._emit_signed_clamp(VYPER_DECIMAL_LO, VYPER_DECIMAL_HI)
            asm.op("CALLER").op("SDIV").op("POP")
        elif isinstance(param, FixedBytesType):
            # bytes32: no clamp is possible; typical code extracts bytes.
            asm.push(0).op("BYTE").op("POP")
        elif isinstance(param, UIntType):
            # uint256 covers the full word: no clamp.
            asm.op("CALLER").op("ADD").op("POP")
        else:
            asm.op("POP")

    def _emit_upper_clamp(self, bound: int) -> None:
        """Revert unless value < bound (Listing 5's comparison idiom)."""
        asm = self.asm
        asm.op("DUP1").push(bound).op("SWAP1").op("LT")  # lt(v, bound)
        asm.op("ISZERO").push_label(self.revert_label).op("JUMPI")

    def _emit_signed_clamp(self, lo: int, hi: int) -> None:
        """Revert when v < lo or v > hi (signed)."""
        asm = self.asm
        asm.op("DUP1").push(_unsigned(lo), width=32).op("SWAP1").op("SLT")
        asm.push_label(self.revert_label).op("JUMPI")  # jump when v < lo
        asm.op("DUP1").push(_unsigned(hi), width=32).op("SWAP1").op("SGT")
        asm.push_label(self.revert_label).op("JUMPI")  # jump when v > hi

    # ------------------------------------------------------------------

    def _emit_fixed_list(self, param: ArrayType, pos: int) -> None:
        """Fixed-size list: external-static-array pattern plus clamps."""
        asm = self.asm
        dims: List[int] = []
        current: AbiType = param
        while isinstance(current, ArrayType):
            assert current.length is not None, "Vyper lists are fixed-size"
            dims.append(current.length)
            current = current.element
        strides = []
        for level in range(len(dims)):
            inner = 1
            for d in dims[level + 1 :]:
                inner *= d
            strides.append(inner * 32)

        asm.push(0)  # accumulator
        for bound, stride in zip(dims, strides):
            asm.op("CALLER").push(1).op("AND")  # [acc, i]
            asm.op("DUP1").push(bound).op("SWAP1").op("LT")
            asm.op("ISZERO").push_label(self.revert_label).op("JUMPI")
            asm.push(stride).op("MUL").op("ADD")
        asm.push(pos).op("ADD").op("CALLDATALOAD")
        self._emit_clamp_and_use(param.base_element)

    def _emit_bounded_blob(self, param: AbiType, pos: int) -> None:
        """bytes[maxLen] / string[maxLen]: one copy of 32 + maxLen bytes
        starting at the num field (R23)."""
        asm = self.asm
        max_length = param.max_length  # type: ignore[attr-defined]
        copy_len = 32 + ((max_length + 31) // 32 * 32)
        membase = self._alloc(copy_len)
        asm.push(pos).op("CALLDATALOAD").push(4).op("ADD")  # [src=num field]
        asm.push(copy_len).op("SWAP1")  # [len, src]
        asm.push(membase).op("CALLDATACOPY")
        if isinstance(param, BoundedBytesType):
            # Byte-granular access distinguishes the byte array (R26).
            asm.push(membase + 32).op("MLOAD").push(0).op("BYTE").op("POP")
        else:
            asm.push(membase).op("MLOAD").op("POP")  # length use only
