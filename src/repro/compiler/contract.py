"""Whole-contract synthesis: dispatcher + function bodies.

Produces runtime bytecode for a list of function signatures, matching
the structure §2.2 describes: a CALLDATALOAD of offset 0, a DIV or SHR
moving the function id into the low 4 bytes, then an EQ chain jumping
into per-function bodies.  A shared revert block serves as the target
for the bound checks and Vyper clamps the bodies emit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.abi.signature import FunctionSignature, Language
from repro.compiler.effects import (
    emit_effect_marker,
    emit_mutability_prologue,
    emit_returns,
    mutability_ground_truth,
    returns_skeleton,
)
from repro.compiler.options import CodegenOptions, DispatcherStyle
from repro.compiler.solidity import SolidityCodegen
from repro.compiler.storage import emit_storage_ops, storage_ground_truth
from repro.compiler.vyper import VyperCodegen
from repro.evm.asm import Assembler


@dataclass(frozen=True)
class FunctionSpec:
    """One function to compile, with optional quirk knobs.

    ``body_params`` — when set, the body *accesses* these types instead
    of the declared ones (the selector still comes from the declared
    signature): models inline-assembly reads (paper case 1), forced
    type conversions (case 2/3) and storage-reference parameters
    (case 4).

    ``const_index`` — static arrays are indexed with compile-time
    constants; combined with the optimizer this removes the bound
    checks SigRec needs (case 5).

    ``no_byte_access`` — the body never touches an individual byte of a
    ``bytes`` value, leaving it indistinguishable from ``string``
    (case 5).

    ``storage_ops`` — ``("read" | "write", StorageVariableSpec)`` pairs
    emitted after the parameter accesses, giving the layout-recovery
    pass ground-truth storage traffic (keys come from CALLER, never
    call data, so signature recovery is unaffected).

    ``mutability`` — ``None`` keeps the legacy emission (no guard; the
    honest ABI truth is ``payable``).  One of ``"payable"`` /
    ``"nonpayable"`` / ``"view"`` / ``"pure"`` emits the matching
    CALLVALUE-guard prologue and effect markers
    (:mod:`repro.compiler.effects`) so the declared mutability is
    statically recoverable.  Declaring ``"pure"`` alongside
    ``storage_ops`` is a build error — the ops would contradict it.

    ``returns`` — declared output types; non-empty replaces the
    ``STOP`` epilogue with an ABI-encoded RETURN buffer.
    """

    sig: FunctionSignature
    body_params: Optional[Tuple] = None
    const_index: bool = False
    no_byte_access: bool = False
    storage_ops: Tuple = ()
    mutability: Optional[str] = None
    returns: Tuple[str, ...] = ()


@dataclass
class CompiledContract:
    """Runtime bytecode plus ground truth for evaluation."""

    bytecode: bytes
    signatures: Tuple[FunctionSignature, ...]
    options: CodegenOptions
    quirks: Tuple[str, ...] = ()  # injected inaccuracy cases, per function
    storage: Tuple[dict, ...] = ()  # expected layout, sorted by (slot, offset)
    #: Per-function ABI ground truth, parallel to ``signatures``:
    #: the stateMutability each body exhibits, and the output skeleton
    #: (``uint256``/``bytes`` words) its RETURN buffer encodes.
    mutability: Tuple[str, ...] = ()
    returns: Tuple[Tuple[str, ...], ...] = ()

    @property
    def selector_map(self) -> Dict[int, FunctionSignature]:
        return {
            int.from_bytes(sig.selector, "big"): sig for sig in self.signatures
        }


class ContractBuildError(Exception):
    pass


def _emit_dispatcher(
    asm: Assembler,
    options: CodegenOptions,
    entries: Sequence[Tuple[int, str]],
) -> None:
    """Calldatasize check, function-id extraction, EQ dispatch.

    Small contracts use a linear EQ chain; larger ones (like real solc)
    split the sorted selector list with GT comparisons into a binary
    search whose leaves are short EQ chains.
    """
    if options.calldatasize_check:
        # Fall back to STOP when the call data cannot hold a selector.
        asm.op("CALLDATASIZE").push(4).op("SWAP1").op("LT")
        asm.push_label("fallback").op("JUMPI")

    asm.push(0).op("CALLDATALOAD")
    if options.dispatcher is DispatcherStyle.SHR:
        asm.push(0xE0).op("SHR")
    else:
        asm.push(1 << 224, width=29).op("SWAP1").op("DIV")
        if options.dispatcher is DispatcherStyle.DIV_AND:
            asm.push(0xFFFFFFFF, width=4).op("AND")

    ordered = sorted(entries)
    _emit_dispatch_tree(asm, ordered, leaf_size=4)
    asm.label("fallback").op("JUMPDEST").op("STOP")


def _emit_dispatch_tree(
    asm: Assembler, entries: Sequence[Tuple[int, str]], leaf_size: int
) -> None:
    """Binary-search dispatch over sorted (selector, label) entries.

    Expects the function id on the stack top and leaves it there (each
    body starts with a POP), exactly like the linear chain.
    """
    if len(entries) <= leaf_size:
        for selector_value, label in entries:
            asm.op("DUP1").push(selector_value, width=4).op("EQ")
            asm.push_label(label).op("JUMPI")
        asm.push_label("fallback").op("JUMP")
        return
    mid = len(entries) // 2
    pivot = entries[mid][0]
    upper = asm.fresh_label("dispatch_hi")
    # fid >= pivot -> upper half: GT(fid, pivot - 1) == fid > pivot-1.
    asm.op("DUP1").push(pivot - 1, width=4).op("SWAP1").op("GT")
    asm.push_label(upper).op("JUMPI")
    _emit_dispatch_tree(asm, entries[:mid], leaf_size)
    asm.label(upper).op("JUMPDEST")
    _emit_dispatch_tree(asm, entries[mid:], leaf_size)


def compile_contract(
    functions: Sequence,
    options: Optional[CodegenOptions] = None,
) -> CompiledContract:
    """Compile signatures (or :class:`FunctionSpec`) into runtime bytecode."""
    options = options or CodegenOptions()
    asm = Assembler()

    specs: List[FunctionSpec] = [
        f if isinstance(f, FunctionSpec) else FunctionSpec(f) for f in functions
    ]

    entries: List[Tuple[int, str]] = []
    seen: set = set()
    for i, spec in enumerate(specs):
        selector_value = int.from_bytes(spec.sig.selector, "big")
        if selector_value in seen:
            raise ContractBuildError(f"duplicate selector for {spec.sig}")
        seen.add(selector_value)
        entries.append((selector_value, f"body_{i}"))

    _emit_dispatcher(asm, options, entries)

    revert_label = "revert_all"
    for i, spec in enumerate(specs):
        sig = spec.sig
        if spec.mutability == "pure" and spec.storage_ops:
            raise ContractBuildError(
                f"{sig}: pure functions cannot carry storage_ops"
            )
        if spec.mutability == "view" and any(
            kind == "write" for kind, _v in spec.storage_ops
        ):
            raise ContractBuildError(
                f"{sig}: view functions cannot carry storage writes"
            )
        asm.label(f"body_{i}").op("JUMPDEST").op("POP")  # drop the id copy
        emit_mutability_prologue(asm, spec.mutability, options, revert_label)
        body_sig = sig
        if spec.body_params is not None:
            body_sig = FunctionSignature(
                sig.name, tuple(spec.body_params), sig.visibility, sig.language
            )
        if options.language is Language.VYPER or sig.language is Language.VYPER:
            VyperCodegen(options, asm, revert_label).emit_function_body(body_sig)
        else:
            codegen = SolidityCodegen(options, asm, revert_label)
            codegen.const_index = spec.const_index
            codegen.no_byte_access = spec.no_byte_access
            codegen.emit_function_body(body_sig)
        if spec.storage_ops:
            emit_storage_ops(asm, spec.storage_ops)
        emit_effect_marker(asm, spec.mutability)
        if spec.returns:
            emit_returns(asm, spec.returns)
        else:
            asm.op("STOP")

    asm.label(revert_label).op("JUMPDEST")
    asm.push(0).push(0).op("REVERT")

    return CompiledContract(
        bytecode=asm.assemble(),
        signatures=tuple(spec.sig for spec in specs),
        options=options,
        quirks=tuple(
            "case" if (spec.body_params or spec.const_index or spec.no_byte_access)
            else "" for spec in specs
        ),
        storage=storage_ground_truth([spec.storage_ops for spec in specs]),
        mutability=tuple(
            mutability_ground_truth(spec.mutability) for spec in specs
        ),
        returns=tuple(returns_skeleton(spec.returns) for spec in specs),
    )
