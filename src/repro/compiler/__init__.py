"""Compiler substrate: Solidity- and Vyper-like EVM code generators.

The paper evaluates SigRec on contracts compiled by 155 solc and 17
vyper versions.  Neither compiler is available offline, so this package
*is* the substitution: it emits runtime bytecode exhibiting exactly the
parameter accessing patterns §2 of the paper documents — dispatcher,
masks/sign-extension for basic types, CALLDATACOPY loops for public
composite parameters, bound-checked CALLDATALOADs for external ones,
offset/num fields for dynamic types, and Vyper's comparison-based range
clamps.  Codegen *versions* model compiler eras (DIV- vs SHR-based
dispatch, presence of the calldatasize check, memory base, optimizer).
"""

from repro.compiler.options import (
    CodegenOptions,
    DispatcherStyle,
    solidity_versions,
    vyper_versions,
)
from repro.compiler.contract import (
    CompiledContract,
    FunctionSpec,
    compile_contract,
)
from repro.compiler.storage import StorageVariableSpec

__all__ = [
    "CodegenOptions",
    "DispatcherStyle",
    "solidity_versions",
    "vyper_versions",
    "CompiledContract",
    "FunctionSpec",
    "StorageVariableSpec",
    "compile_contract",
]
