"""Codegen options modelling compiler versions and optimization levels."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from repro.abi.signature import Language


class DispatcherStyle(enum.Enum):
    """How the function id is extracted from calldata[0:32].

    Pre-Constantinople compilers divide by 2^224 (optionally masking the
    result with 0xffffffff); later ones shift right by 224 bits.
    """

    DIV_AND = "div_and"  # DIV 2^224 then AND 0xffffffff
    DIV = "div"  # DIV 2^224 only
    SHR = "shr"  # SHR 224


@dataclass(frozen=True)
class CodegenOptions:
    """One "compiler version x optimization" point.

    ``obfuscate`` swaps every accessing-pattern idiom for a semantically
    equivalent but syntactically different instruction sequence (SHL/SHR
    pairs instead of AND masks, EQ-zero instead of ISZERO, shifted
    strides, inverted loop guards, split constants) — the adversarial
    setting §7 of the paper discusses.  SigRec's semantic rules are
    expected to survive it; byte-pattern tools are not.
    """

    language: Language = Language.SOLIDITY
    version: str = "0.5.0"
    optimize: bool = False
    dispatcher: DispatcherStyle = DispatcherStyle.DIV
    calldatasize_check: bool = True
    memory_base: int = 0x80
    obfuscate: bool = False

    @property
    def version_key(self) -> str:
        """Version label including the optimization flag (paper counts a
        version with and without optimization as two versions)."""
        return f"{self.version}{'+opt' if self.optimize else ''}"


def solidity_versions() -> List[CodegenOptions]:
    """A catalog of Solidity codegen variants standing in for the 155
    compiler versions of Fig. 15 (each minor version w/ and w/o the
    optimizer)."""
    catalog: List[CodegenOptions] = []
    minors = [
        ("0.1.%d" % p, DispatcherStyle.DIV_AND, False, 0x60)
        for p in range(1, 8)
    ]
    minors += [
        ("0.2.%d" % p, DispatcherStyle.DIV_AND, False, 0x60)
        for p in range(0, 3)
    ]
    minors += [
        ("0.3.%d" % p, DispatcherStyle.DIV_AND, True, 0x60)
        for p in range(0, 7)
    ]
    minors += [
        ("0.4.%d" % p, DispatcherStyle.DIV, True, 0x60)
        for p in range(0, 27)
    ]
    minors += [
        ("0.5.%d" % p, DispatcherStyle.SHR, True, 0x80)
        for p in range(0, 18)
    ]
    minors += [
        ("0.6.%d" % p, DispatcherStyle.SHR, True, 0x80)
        for p in range(0, 13)
    ]
    minors += [
        ("0.7.%d" % p, DispatcherStyle.SHR, True, 0x80)
        for p in range(0, 7)
    ]
    minors += [("0.8.0", DispatcherStyle.SHR, True, 0x80)]
    for version, dispatcher, cds_check, membase in minors:
        for optimize in (False, True):
            catalog.append(
                CodegenOptions(
                    language=Language.SOLIDITY,
                    version=version,
                    optimize=optimize,
                    dispatcher=dispatcher,
                    calldatasize_check=cds_check,
                    memory_base=membase,
                )
            )
    return catalog


def vyper_versions() -> List[CodegenOptions]:
    """Vyper codegen variants standing in for Fig. 16's 17 versions."""
    catalog: List[CodegenOptions] = []
    versions = [
        ("0.1.0b%d" % p, DispatcherStyle.DIV) for p in range(4, 18)
    ] + [
        ("0.2.%d" % p, DispatcherStyle.SHR) for p in range(0, 9)
    ]
    for version, dispatcher in versions:
        catalog.append(
            CodegenOptions(
                language=Language.VYPER,
                version=version,
                optimize=False,
                dispatcher=dispatcher,
                calldatasize_check=True,
                memory_base=0x80,
            )
        )
    return catalog
